"""Asyncio serving front end: thousands of connections on one event loop.

The threaded TCP server (:mod:`repro.serving.server`) pins one thread per
connection, so a few thousand mostly-idle clients exhaust the thread budget
long before the engine is saturated.  :class:`AsyncQueryFrontend` multiplexes
all of them on a single event loop instead:

* **Line protocol over asyncio streams.**  Every client connection speaks
  exactly the protocol of the threaded server (``s t`` queries,
  ``add``/``remove``/``publish`` mutations, ``STATS`` / ``STATS JSON``,
  ``QUIT``); query, mutation and error replies are rendered through the
  shared :mod:`~repro.serving.protocol` formatters, so they are
  byte-identical across front ends (the stats replies additionally report
  ``num_connections`` here).  An idle connection costs a couple of
  suspended coroutines, not a thread.
* **Awaitable micro-batching.**  Requests land on an :class:`asyncio.Queue`;
  a batcher coroutine coalesces them under the same deadline + max-batch
  admission control as :class:`~repro.serving.server.QueryServer` and
  dispatches each batch to the engine through ``run_in_executor`` — CPU work
  (numpy label merges, or the sharded engine's cross-process fan-out) never
  blocks the loop, so accepts and reads keep flowing while a batch computes.
* **HTTP/1.1 admin plane.**  A second listener answers ``GET /metrics``
  (Prometheus text exposition — counters, gauges, latency/stage histograms
  and index-health gauges rendered from
  :class:`~repro.serving.metrics.ServerMetrics`), ``GET /healthz`` (JSON
  liveness incl. snapshot version and connection count), ``POST /publish``
  (hot-swap pending mutations), ``GET /alerts`` (health-engine rule states
  when a :class:`~repro.serving.alerts.HealthMonitor` is attached), and a
  debug surface: ``GET /traces`` (recent + slow request traces as JSON),
  ``GET /debug/threads`` (all-thread stack dump),
  ``GET /debug/profile?seconds=N`` (cProfile capture of the event loop,
  pstats text) and ``GET /debug/bundle`` (one-shot JSON diagnostics
  archive: metrics, alerts, traces, thread dump, index health and the
  environment fingerprint) — curl-able, scrapeable, no client library
  needed.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` (or :meth:`request_stop`) stop
  admissions, finish every in-flight batch, flush the replies, then close
  the connections — clients always see a final response or a clean EOF, and
  shared-memory generations are retired by the owning manager/engine
  ``close()`` afterwards, never yanked mid-batch.
* **Self-healing backend.**  With a sharded backend, an optional health
  coroutine pings the worker pool periodically; a broken pool is respawned
  by the engine and counted in the metrics.

The front end accepts the same backends as the threaded server — a
:class:`~repro.serving.snapshot.SnapshotManager`, a bare
:class:`~repro.serving.engine.BatchQueryEngine`, or a
:class:`~repro.serving.sharded.ShardedQueryEngine` — and the same hot-pair
:class:`~repro.serving.cache.LRUCache`.
"""

from __future__ import annotations

import asyncio
import cProfile
import io
import json
import pstats
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs

import numpy as np

from repro.core.index import validate_vertex_ids
from repro.errors import (
    AdmissionError,
    GraphError,
    IndexBuildError,
    ServingError,
    VertexError,
)
from repro.obs.schema import collect_fingerprint
from repro.serving.alerts import (
    HealthMonitor,
    ShadowCanary,
    alerts_wire_reply,
    augment_snapshot,
)
from repro.serving.cache import LRUCache, cached_query_batch
from repro.serving.engine import BatchQueryEngine
from repro.serving.metrics import (
    ServerMetrics,
    index_health_stats,
    render_prometheus_text,
)
from repro.serving.protocol import (
    ALERTS_COMMAND,
    OP_ADD,
    OP_PUBLISH,
    OP_REMOVE,
    QUIT_COMMANDS,
    STATS_COMMANDS,
    TRACES_COMMAND,
    VERB_ONE_TO_MANY,
    VERB_PAIR,
    format_distance_line,
    format_error,
    format_mutation_ack,
    format_one_to_many_reply,
    format_parse_error,
    format_publish_ack,
    is_mutation,
    is_one_to_many,
    normalize_command,
    parse_mutation,
    parse_one_to_many,
    parse_pair,
)
from repro.serving.snapshot import SnapshotManager
from repro.serving.tracing import StructuredLogger, Trace, TraceRecorder

__all__ = ["AsyncQueryFrontend"]

#: Hard cap on one ``/debug/profile`` capture, seconds.
_MAX_PROFILE_SECONDS = 30.0

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
}

#: Admin-plane request bodies larger than this are rejected outright.
_MAX_HTTP_BODY = 1 << 16


class _AsyncRequest:
    """One admitted unit of work: aligned id arrays plus the future to resolve."""

    __slots__ = ("sources", "targets", "future", "created", "dequeued", "trace")

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        future: "asyncio.Future[np.ndarray]",
    ) -> None:
        self.sources = sources
        self.targets = targets
        self.future = future
        self.created = time.perf_counter()
        #: Stamped by the batcher coroutine when it pulls the request off the
        #: queue; ``dequeued - created`` is the queue-wait stage of the trace.
        self.dequeued = self.created
        #: The request's open trace (``None`` when tracing is off).
        self.trace: Optional[Trace] = None

    def __len__(self) -> int:
        return int(self.sources.shape[0])


class AsyncQueryFrontend:
    """Event-loop front end: micro-batched queries, admin plane, graceful drain.

    Parameters
    ----------
    backend:
        A :class:`~repro.serving.snapshot.SnapshotManager` (hot-swap serving
        and mutations), a bare :class:`~repro.serving.engine.BatchQueryEngine`
        (static index), or a :class:`~repro.serving.sharded.ShardedQueryEngine`
        (multi-process serving, with mutations when it wraps a shared
        manager).
    cache:
        Optional hot-pair :class:`~repro.serving.cache.LRUCache`; hits skip
        the engine, and the cache is cleared when the snapshot version
        changes (same invalidation rule as the threaded server).
    max_batch_size / batch_timeout / max_pending:
        The admission-control and coalescing knobs, with the same meanings
        and defaults as :class:`~repro.serving.server.QueryServer`.
    metrics:
        Optional shared :class:`~repro.serving.metrics.ServerMetrics`.
    health_check_interval:
        Seconds between worker-pool health probes; only meaningful when the
        backend exposes ``ping`` (the sharded engine).  ``None`` disables the
        probe loop.
    tracer:
        :class:`~repro.serving.tracing.TraceRecorder` collecting per-request
        traces, served on ``GET /traces`` and the ``TRACES`` wire command
        (default: a fresh recorder; pass a
        :class:`~repro.serving.tracing.NullTraceRecorder` to disable).
    logger:
        Optional :class:`~repro.serving.tracing.StructuredLogger` for
        lifecycle events (``frontend_start`` / ``frontend_stop`` /
        ``snapshot_publish``).

    All coroutine methods must run on the loop :meth:`start` was awaited on.
    Typical embedding::

        frontend = AsyncQueryFrontend(manager, cache=LRUCache(65_536))
        asyncio.run(frontend.serve("0.0.0.0", 5577, http_port=9100))

    or drive the pieces yourself (tests do)::

        await frontend.start()
        server = await frontend.start_tcp("127.0.0.1", 0)
        ...
        await frontend.stop()
    """

    def __init__(
        self,
        backend: Union[SnapshotManager, BatchQueryEngine],
        *,
        cache: Optional[LRUCache] = None,
        max_batch_size: int = 2048,
        batch_timeout: float = 0.002,
        max_pending: int = 4096,
        metrics: Optional[ServerMetrics] = None,
        health_check_interval: Optional[float] = None,
        tracer: Optional[TraceRecorder] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self._backend = backend
        self.cache = cache
        self.tracer = tracer if tracer is not None else TraceRecorder()
        self.logger = logger
        self.max_batch_size = int(max_batch_size)
        self.batch_timeout = float(batch_timeout)
        self.max_pending = int(max_pending)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: Optional caller-owned attachments (the CLI wires them): a
        #: background health engine and the shadow correctness canary.
        #: Their stats/alerts fold into every metrics snapshot when set.
        self.health: Optional[HealthMonitor] = None
        self.shadow: Optional[ShadowCanary] = None
        manager = self.snapshot_manager
        self._cache_version = manager.version if manager is not None else None
        self._health_check_interval = health_check_interval

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[Optional[_AsyncRequest]]"] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._health_task: Optional[asyncio.Task] = None
        self._lag_task: Optional[asyncio.Task] = None
        #: Latest sampled event-loop scheduling lag (seconds); written only
        #: by the lag task on the loop, read by metrics_snapshot.
        self._loop_lag = 0.0
        self._lag_interval = 0.5
        self._draining: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._servers = []
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._admin_connections: set = set()
        #: Requests admitted but not yet completed (the qsize analogue).
        self._pending = 0
        self._accepting = False
        self._running = False
        #: One /debug/profile capture at a time (cProfile is process-global).
        self._profiling = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def snapshot_manager(self) -> Optional[SnapshotManager]:
        """The backing snapshot manager, when hot swap is enabled."""
        if isinstance(self._backend, SnapshotManager):
            return self._backend
        return getattr(self._backend, "snapshot_manager", None)

    @property
    def running(self) -> bool:
        """Whether the batcher loop is active."""
        return self._running

    @property
    def num_connections(self) -> int:
        """Open line-protocol connections."""
        return len(self._connections)

    def _listener_address(
        self, server: Optional[asyncio.AbstractServer]
    ) -> Optional[Tuple[str, int]]:
        if server is None or not server.sockets:
            return None
        name = server.sockets[0].getsockname()
        return (name[0], name[1])

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """Bound ``(host, port)`` of the line-protocol listener (if started)."""
        return self._listener_address(self._tcp_server)

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """Bound ``(host, port)`` of the HTTP admin listener (if started)."""
        return self._listener_address(self._http_server)

    def _current_engine(self) -> BatchQueryEngine:
        if isinstance(self._backend, SnapshotManager):
            return self._backend.current.engine
        return self._backend

    def _current_engine_and_invalidate(self) -> BatchQueryEngine:
        """One snapshot grab per batch, with cache invalidation on version change."""
        manager = self.snapshot_manager
        if manager is None:
            return self._backend
        snapshot = manager.current
        if self.cache is not None and snapshot.version != self._cache_version:
            self.cache.clear()
            self._cache_version = snapshot.version
        if isinstance(self._backend, SnapshotManager):
            return snapshot.engine
        return self._backend

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def _metrics_kwargs(self) -> dict:
        manager = self.snapshot_manager
        return dict(
            cache_stats=self.cache.stats if self.cache is not None else None,
            snapshot_version=manager.version if manager is not None else None,
            queue_depth=self._pending,
        )

    def metrics_snapshot(self) -> dict:
        """Serving statistics including cache, snapshot version, queue depth,
        the open-connection count, the index-health gauges (label entries,
        bit-parallel roots, dirty vertices, generation identity/bytes) and —
        when a health monitor / shadow canary is attached — the alert gauges,
        active alerts and shadow-canary counters."""
        stats = self.metrics.snapshot(**self._metrics_kwargs())
        stats["num_connections"] = self.num_connections
        stats["event_loop_lag_seconds"] = self._loop_lag
        try:
            stats.update(
                index_health_stats(self._current_engine(), self.snapshot_manager)
            )
        except Exception:
            # Health introspection is best effort: a backend mid-teardown
            # (closed sharded engine) must not take /metrics down with it.
            pass
        return augment_snapshot(stats, health=self.health, shadow=self.shadow)

    def metrics_json(self) -> str:
        """Single-line JSON metrics (the ``stats json`` wire reply)."""
        return json.dumps(self.metrics_snapshot(), sort_keys=True)

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the current metrics (``GET /metrics``)."""
        return render_prometheus_text(self.metrics_snapshot())

    def traces_json(self, *, limit: Optional[int] = 32) -> str:
        """JSON trace dump (``GET /traces`` body and the ``TRACES`` wire reply)."""
        return json.dumps(self.tracer.snapshot(limit=limit), sort_keys=True)

    def alerts_json(self) -> str:
        """JSON alert payload (``GET /alerts`` body and the ``ALERTS`` reply)."""
        return alerts_wire_reply(self.health)

    def diagnostics_bundle(self) -> dict:
        """One-shot diagnostics archive (``GET /debug/bundle``).

        Bundles everything an operator would otherwise collect endpoint by
        endpoint during an incident: the metrics snapshot (already including
        alert gauges and shadow counters), the full alert payload, recent and
        slow traces, an all-thread stack dump, index health, kernel identity
        and the environment fingerprint.  Runs ``collect_fingerprint`` (a git
        subprocess) so callers on the event loop must dispatch through the
        executor.
        """
        engine = None
        try:
            engine = self._current_engine()
        except Exception:
            pass
        bundle: dict = {
            "metrics": self.metrics_snapshot(),
            "alerts": json.loads(self.alerts_json()),
            "traces": self.tracer.snapshot(limit=32),
            "threads": self._debug_threads_text(),
            "kernel": {
                "kernel_name": getattr(engine, "kernel_name", "unknown"),
                "kernel_requested": getattr(engine, "kernel_requested", None),
            },
        }
        try:
            bundle["index_health"] = index_health_stats(
                engine, self.snapshot_manager
            )
        except Exception:
            bundle["index_health"] = {}
        try:
            bundle["environment"] = collect_fingerprint().as_dict()
        except Exception:
            bundle["environment"] = {}
        return bundle

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "AsyncQueryFrontend":
        """Bind to the running loop and start the batcher (idempotent)."""
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        # Two threads: one effectively serialises engine batches (the batcher
        # awaits each dispatch, mirroring the threaded server's single
        # worker), the other keeps mutations/publishes from stalling query
        # batches behind them.
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-pll-aio"
        )
        self._draining = asyncio.Event()
        self._stop_requested = asyncio.Event()
        self._accepting = True
        self._running = True
        self._batcher_task = asyncio.create_task(self._batcher_loop())
        self._lag_task = asyncio.create_task(self._lag_loop())
        if self._health_check_interval and hasattr(self._backend, "ping"):
            self._health_task = asyncio.create_task(self._health_loop())
        if self.logger is not None:
            self.logger.event(
                "frontend_start",
                max_batch_size=self.max_batch_size,
                batch_timeout=self.batch_timeout,
                max_pending=self.max_pending,
            )
        return self

    async def stop(self) -> None:
        """Drain and shut down: finish in-flight work, then close connections.

        Admission stops immediately (late submissions fail fast with
        :class:`~repro.errors.ServingError`, which the protocol renders as a
        clean ``error:`` line), every already-admitted request completes and
        its reply is flushed, then remaining connections are closed.  Safe to
        call once per :meth:`start`; concurrent callers are idempotent.
        """
        if not self._running:
            return
        self._running = False
        self._accepting = False
        self._draining.set()
        for server in self._servers:
            server.close()
        for server in self._servers:
            # Bounded: from Python 3.12.1 wait_closed() also waits for every
            # connection handler, and an idle admin connection (opened, no
            # request sent) would hold it forever — the force-close below
            # deals with those.
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=1.0)
            except Exception:  # pragma: no cover - timeout or platform teardown
                pass
        self._servers.clear()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._lag_task is not None:
            self._lag_task.cancel()
            try:
                await self._lag_task
            except asyncio.CancelledError:
                pass
            self._lag_task = None
        # Every request admitted before the flag flipped completes here...
        await self._queue.join()
        self._queue.put_nowait(None)
        if self._batcher_task is not None:
            await self._batcher_task
            self._batcher_task = None
        # ...and the handlers get a grace window to flush the final replies
        # and exit on their own (they watch the draining event) before any
        # straggler — e.g. a client streaming queries forever — is cut off.
        deadline = self._loop.time() + 1.0
        while self._connections and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections) + list(self._admin_connections):
            writer.close()
        deadline = self._loop.time() + 5.0
        while (
            (self._connections or self._admin_connections)
            and self._loop.time() < deadline
        ):
            await asyncio.sleep(0.01)
        # Executor teardown joins its worker threads (wait=True default) —
        # run it off-loop so a slow in-flight publish cannot stall the drain.
        await self._loop.run_in_executor(None, self._executor.shutdown)
        if self.logger is not None:
            self.logger.event(
                "frontend_stop", num_queries=self.metrics.num_queries
            )

    def request_stop(self) -> None:
        """Ask :meth:`serve` to drain and return (signal-handler safe)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    def request_stop_threadsafe(self) -> None:
        """Like :meth:`request_stop`, callable from any thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_stop)

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0, *, backlog: int = 2048
    ) -> asyncio.AbstractServer:
        """Start the line-protocol listener; ``port=0`` binds an ephemeral port."""
        server = await asyncio.start_server(
            self._handle_connection, host, port, backlog=backlog
        )
        self._servers.append(server)
        self._tcp_server = server
        return server

    async def start_http(
        self, host: str = "127.0.0.1", port: int = 0, *, backlog: int = 128
    ) -> asyncio.AbstractServer:
        """Start the HTTP admin listener (``/metrics``, ``/healthz``,
        ``/publish``, ``/alerts``, ``/traces``, ``/debug/threads``,
        ``/debug/profile``, ``/debug/bundle``)."""
        server = await asyncio.start_server(
            self._handle_http, host, port, backlog=backlog
        )
        self._servers.append(server)
        self._http_server = server
        return server

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
        install_signal_handlers: bool = True,
        ready: Optional[Callable[["AsyncQueryFrontend"], None]] = None,
    ) -> None:
        """Run the front end until a stop is requested, then drain.

        Starts the batcher and the TCP listener (plus the HTTP admin listener
        when ``http_port`` is given), installs ``SIGTERM``/``SIGINT``
        handlers that trigger a graceful drain (where the platform supports
        loop signal handlers), invokes ``ready`` once the ports are bound
        (read them from :attr:`tcp_address` / :attr:`http_address`), and
        blocks until :meth:`request_stop` — or a signal — fires.
        """
        await self.start()
        await self.start_tcp(host, port)
        if http_port is not None:
            await self.start_http(http_host if http_host is not None else host, http_port)
        loop = asyncio.get_running_loop()
        installed = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        if ready is not None:
            ready(self)
        try:
            await self._stop_requested.wait()
        finally:
            # Drain with the handlers still installed: a second SIGTERM during
            # the drain must stay a (redundant) stop request, not the default
            # hard kill that would strand shared-memory generations.
            try:
                await self.stop()
            finally:
                for signum in installed:
                    loop.remove_signal_handler(signum)

    # ------------------------------------------------------------------ #
    # Client API (coroutines)
    # ------------------------------------------------------------------ #

    def submit(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> "asyncio.Future[np.ndarray]":
        """Admit one request of aligned pairs; returns the future to await.

        Synchronous (no suspension point between the admission check and the
        enqueue), so back-to-back submits observe a consistent pending count.

        Raises
        ------
        AdmissionError
            When ``max_pending`` requests are already admitted.
        ServingError
            When the front end is not started or is draining.
        VertexError
            When a vertex id is out of range — validated at submission so one
            malformed request cannot fail the batch it would have joined.
        """
        if not self._accepting:
            raise ServingError(
                "front end is not accepting requests; call start() first"
            )
        if self._pending >= self.max_pending:
            self.metrics.observe_rejection()
            raise AdmissionError(
                f"request rejected: {self.max_pending} requests already pending"
            )
        source_array = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        target_array = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if source_array.shape != target_array.shape:
            raise ValueError("sources and targets must have the same length")
        num_vertices = self._current_engine().num_vertices
        validate_vertex_ids(source_array, num_vertices)
        validate_vertex_ids(target_array, num_vertices)
        future: "asyncio.Future[np.ndarray]" = self._loop.create_future()
        self._pending += 1
        request = _AsyncRequest(source_array, target_array, future)
        # Trace id minted at admission, before the request touches the queue.
        request.trace = self.tracer.start(len(request))
        self._queue.put_nowait(request)
        return future

    async def query_batch(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Submit aligned pairs and await the distances."""
        return await self.submit(sources, targets)

    async def distance(self, s: int, t: int) -> float:
        """Scalar convenience query."""
        return float((await self.submit([s], [t]))[0])

    async def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Distances from ``source`` to ``targets`` (all vertices when ``None``).

        Runs the engine fan-out on the executor (one kernel call, off the
        loop) rather than through the pair batcher — same dispatch decision
        as the threaded server's ``query_one_to_many``, same verb metrics.
        Fan-outs still count against ``max_pending`` while in flight, so a
        flood of ``many`` lines meets the same admission gate as point
        queries instead of bypassing overload protection.
        """
        if not self._accepting:
            raise ServingError(
                "front end is not accepting requests; call start() first"
            )
        # Same synchronous check-then-increment as submit(): no suspension
        # point in between, so concurrent coroutines see a consistent count.
        if self._pending >= self.max_pending:
            self.metrics.observe_rejection()
            raise AdmissionError(
                f"request rejected: {self.max_pending} requests already pending"
            )
        self._pending += 1
        try:
            start = time.perf_counter()
            want_spans = self.tracer.enabled or self.metrics.has_histograms
            spans: Optional[list] = [] if want_spans else None
            engine = self._current_engine_and_invalidate()
            trace = self.tracer.start(
                len(targets) if targets is not None else engine.num_vertices
            )

            def _run() -> np.ndarray:
                return engine.query_one_to_many(source, targets, span_sink=spans)

            try:
                distances = await self._loop.run_in_executor(self._executor, _run)
            except Exception:
                self.metrics.observe_error()
                self.tracer.record(trace, time.perf_counter() - start, status="error")
                raise
        finally:
            self._pending -= 1
        elapsed = time.perf_counter() - start
        num_pairs = int(distances.shape[0])
        self.metrics.observe_batch(num_pairs, 1, elapsed, request_latencies=[elapsed])
        self.metrics.observe_verb(VERB_ONE_TO_MANY, num_pairs)
        self.metrics.observe_kernel_op(
            getattr(engine, "kernel_name", "unknown"), "query_one_to_many", num_pairs
        )
        if spans:
            if trace is not None:
                trace.extend(spans)
                self.tracer.record(trace, elapsed)
            kernel_seconds = [span.seconds for span in spans if span.name == "kernel"]
            if self.metrics.has_histograms and kernel_seconds:
                self.metrics.observe_stages({"kernel": kernel_seconds})
        return distances

    async def publish(self):
        """Publish pending mutations as a new snapshot (off-loop); returns it."""
        manager = self._require_manager()
        snapshot = await self._loop.run_in_executor(self._executor, manager.publish)
        if self.logger is not None:
            self.logger.event(
                "snapshot_publish", version=snapshot.version, source=snapshot.source
            )
        return snapshot

    def _require_manager(self) -> SnapshotManager:
        manager = self.snapshot_manager
        if manager is None:
            raise ServingError(
                "mutations require a snapshot-manager backend; this front "
                "end wraps a bare engine"
            )
        return manager

    async def apply_mutation(
        self, op: str, endpoints: Optional[Tuple[int, int]] = None
    ) -> str:
        """Apply one parsed mutation (``add`` / ``remove`` / ``publish``).

        Same vocabulary and acknowledgement lines as
        :meth:`~repro.serving.server.QueryServer.apply_mutation`; the work
        runs on the executor so a slow publish never stalls the loop.
        """
        manager = self._require_manager()
        return await self._loop.run_in_executor(
            self._executor, self._apply_mutation_sync, manager, op, endpoints
        )

    @staticmethod
    def _apply_mutation_sync(
        manager: SnapshotManager, op: str, endpoints: Optional[Tuple[int, int]]
    ) -> str:
        if op == OP_PUBLISH:
            snapshot = manager.publish()
            return format_publish_ack(snapshot.version)
        if endpoints is None:
            raise ValueError(f"mutation {op!r} requires edge endpoints")
        a, b = endpoints
        if op == OP_ADD:
            manager.insert_edge(a, b)
        elif op == OP_REMOVE:
            manager.remove_edge(a, b)
        else:
            raise ValueError(f"unknown mutation {op!r}")
        return format_mutation_ack(op, a, b, manager.pending_updates)

    # ------------------------------------------------------------------ #
    # Batcher
    # ------------------------------------------------------------------ #

    async def _batcher_loop(self) -> None:
        """Coalesce admitted requests into engine batches until the sentinel."""
        while True:
            request = await self._queue.get()
            if request is None:
                self._queue.task_done()
                return
            request.dequeued = time.perf_counter()
            batch = [request]
            gathered = len(request)
            deadline = self._loop.time() + self.batch_timeout
            stopping = False
            while gathered < self.max_batch_size:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    more = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if more is None:
                    self._queue.task_done()
                    stopping = True
                    break
                more.dequeued = time.perf_counter()
                batch.append(more)
                gathered += len(more)
            await self._process_batch(batch)
            if stopping:
                return

    def _evaluate_sync(
        self,
        engine: BatchQueryEngine,
        sources: np.ndarray,
        targets: np.ndarray,
        span_sink=None,
    ) -> np.ndarray:
        """Cache-fronted engine evaluation; runs on the executor thread."""
        return cached_query_batch(
            engine, self.cache, sources, targets, span_sink=span_sink
        )

    @staticmethod
    def _complete(request: _AsyncRequest, result: np.ndarray) -> None:
        # The future is done when the awaiting client vanished (connection
        # closed cancels the await, which cancels the future) — drop silently.
        if not request.future.done():
            request.future.set_result(result)

    @staticmethod
    def _fail(request: _AsyncRequest, error: BaseException) -> None:
        if not request.future.done():
            request.future.set_exception(error)

    def _trace_batch(
        self, batch, batch_spans, start: float, eval_done: float, completed: float
    ) -> None:
        """Stitch batch-shared spans into every request trace; feed histograms.

        Mirrors :meth:`QueryServer._trace_batch`: per-request ``queue`` /
        ``batch`` / ``reply`` spans plus the shared cache-probe and
        kernel/shard spans from the engine dispatch.
        """
        num_pairs = sum(len(request) for request in batch)
        reply_seconds = completed - eval_done
        stage_queue = []
        stage_batch = []
        for request in batch:
            queue_wait = max(request.dequeued - request.created, 0.0)
            coalesce = max(start - request.dequeued, 0.0)
            stage_queue.append(queue_wait)
            stage_batch.append(coalesce)
            trace = request.trace
            if trace is not None:
                trace.add_span("queue", queue_wait)
                trace.add_span(
                    "batch",
                    coalesce,
                    batch_pairs=num_pairs,
                    batch_requests=len(batch),
                )
                trace.extend(batch_spans)
                trace.add_span("reply", reply_seconds)
                self.tracer.record(trace, completed - request.created)
        if self.metrics.has_histograms:
            stages = {"queue": stage_queue, "batch": stage_batch}
            kernel_seconds = [
                span.seconds for span in batch_spans if span.name in ("kernel", "shard")
            ]
            probe_seconds = [
                span.seconds for span in batch_spans if span.name == "cache_probe"
            ]
            if kernel_seconds:
                stages["kernel"] = kernel_seconds
            if probe_seconds:
                stages["cache_probe"] = probe_seconds
            self.metrics.observe_stages(stages)

    async def _process_batch(self, batch) -> None:
        start = time.perf_counter()
        # Shared span list for the whole batch (see QueryServer._process_batch);
        # the executor thread appends to it, but only before the await
        # completes, so the loop-side read below never races it.
        want_spans = self.tracer.enabled or self.metrics.has_histograms
        batch_spans = [] if want_spans else None
        try:
            engine = self._current_engine_and_invalidate()
            sources = np.concatenate([request.sources for request in batch])
            targets = np.concatenate([request.targets for request in batch])
            distances = await self._loop.run_in_executor(
                self._executor,
                self._evaluate_sync,
                engine,
                sources,
                targets,
                batch_spans,
            )
        except Exception:
            # Retry each request alone so one poisoned or oversized request
            # (e.g. ids stale after a hot swap to a smaller index) cannot
            # fail the unrelated requests it was coalesced with.
            succeeded = []
            for request in batch:
                try:
                    result = await self._loop.run_in_executor(
                        self._executor,
                        self._evaluate_sync,
                        self._current_engine_and_invalidate(),
                        request.sources,
                        request.targets,
                    )
                except Exception as single_exc:
                    self._fail(request, single_exc)
                    self.metrics.observe_error()
                    self.tracer.record(
                        request.trace,
                        time.perf_counter() - request.created,
                        status="error",
                    )
                else:
                    self._complete(request, result)
                    succeeded.append(request)
            if succeeded:
                completed = time.perf_counter()
                num_pairs = sum(len(request) for request in succeeded)
                self.metrics.observe_batch(
                    num_pairs,
                    len(succeeded),
                    completed - start,
                    request_latencies=[
                        completed - request.created for request in succeeded
                    ],
                )
                self._count_pair_queries(num_pairs)
                for request in succeeded:
                    self.tracer.record(
                        request.trace, completed - request.created, status="retried"
                    )
            return
        finally:
            for _ in batch:
                self._queue.task_done()
            self._pending -= len(batch)
        eval_done = time.perf_counter()
        offset = 0
        for request in batch:
            self._complete(request, distances[offset: offset + len(request)])
            offset += len(request)
        completed = time.perf_counter()
        self.metrics.observe_batch(
            int(sources.shape[0]),
            len(batch),
            completed - start,
            request_latencies=[completed - request.created for request in batch],
        )
        self._count_pair_queries(int(sources.shape[0]))
        shadow = self.shadow
        if shadow is not None:
            # After completion so sampling never sits between kernel and
            # reply; the canary copies the arrays before enqueueing.
            shadow.maybe_submit(engine, sources, targets, distances)
        if want_spans:
            self._trace_batch(batch, batch_spans, start, eval_done, completed)

    def _count_pair_queries(self, num_pairs: int) -> None:
        """Stamp per-verb and per-kernel-op counters for one pair batch."""
        self.metrics.observe_verb(VERB_PAIR, num_pairs)
        self.metrics.observe_kernel_op(
            getattr(self._current_engine(), "kernel_name", "unknown"),
            "query_pairs",
            num_pairs,
        )

    async def _lag_loop(self) -> None:
        """Sample event-loop scheduling lag: how late a timed sleep wakes up.

        A healthy loop wakes within microseconds of the deadline; a loop
        wedged behind a blocking call (the exact failure RL002 hunts for
        statically) shows up here at runtime as lag on the
        ``event_loop_lag_seconds`` gauge.
        """
        while True:
            target = self._loop.time() + self._lag_interval
            await asyncio.sleep(self._lag_interval)
            self._loop_lag = max(0.0, self._loop.time() - target)

    async def _health_loop(self) -> None:
        """Ping the sharded worker pool periodically; it respawns on breakage."""
        while True:
            await asyncio.sleep(self._health_check_interval)
            try:
                await self._loop.run_in_executor(
                    self._executor, self._backend.ping
                )
            except ServingError:
                # Only a closed engine ends the probing; a transient failure
                # (e.g. the respawned pool broke again under memory pressure)
                # must not silently disable self-healing for good.
                if getattr(self._backend, "closed", False):
                    return
                continue
            except Exception:  # pragma: no cover - probe must never kill the loop
                continue

    # ------------------------------------------------------------------ #
    # Line protocol
    # ------------------------------------------------------------------ #

    async def _handle_line(self, line: str) -> Optional[str]:
        """Evaluate one protocol line; ``None`` ends the session.

        The command surface and every reply format match the threaded
        server's ``_handle_line`` exactly.
        """
        stripped = line.strip()
        if not stripped:
            return ""
        command = normalize_command(stripped)
        if command in QUIT_COMMANDS:
            return None
        if command in STATS_COMMANDS:
            return self.metrics_json()
        if command == TRACES_COMMAND:
            return self.traces_json()
        if command == ALERTS_COMMAND:
            return self.alerts_json()
        if is_mutation(stripped):
            try:
                op, endpoints = parse_mutation(stripped)
            except ValueError as exc:
                return format_parse_error("mutation", stripped, exc)
            try:
                return await self.apply_mutation(op, endpoints)
            except (ServingError, GraphError, IndexBuildError) as exc:
                return format_error(exc)
        if is_one_to_many(stripped):
            try:
                source, targets = parse_one_to_many(stripped)
            except ValueError as exc:
                return format_parse_error("query", stripped, exc)
            try:
                distances = await self.query_one_to_many(source, targets)
            except (AdmissionError, ServingError, VertexError, TimeoutError) as exc:
                return format_error(exc)
            return format_one_to_many_reply(source, targets, distances)
        try:
            s, t = parse_pair(stripped)
        except ValueError as exc:
            return format_parse_error("query", stripped, exc)
        try:
            distance = float((await self.submit([s], [t]))[0])
        # Same client-attributable tuple as the threaded server's handler:
        # TimeoutError covers a wedged sharded worker surfacing through the
        # batch retry — answer an error line, never kill the session.
        except (AdmissionError, ServingError, VertexError, TimeoutError) as exc:
            return format_error(exc)
        return format_distance_line(s, t, distance)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One line-protocol session; exits on EOF, ``QUIT`` or drain."""
        self._connections.add(writer)
        drain_wait = asyncio.ensure_future(self._draining.wait())
        try:
            while True:
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read not in done:
                    # Draining with no line in flight: close cleanly (EOF).
                    read.cancel()
                    break
                raw = read.result()
                if not raw:
                    break
                reply = await self._handle_line(raw.decode("utf-8", "replace"))
                if reply is None:
                    break
                if reply:
                    writer.write((reply + "\n").encode("utf-8"))
                    await writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception:
            # A dropped connection mid-write (reset, broken pipe) — or any
            # similarly client-attributable failure — must not spam the loop's
            # exception handler or affect other sessions.
            pass
        finally:
            drain_wait.cancel()
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # HTTP admin plane
    # ------------------------------------------------------------------ #

    async def _http_respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "application/json",
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One admin-plane request (HTTP/1.1, one request per connection)."""
        self._admin_connections.add(writer)
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                await self._http_respond(
                    writer, 400, json.dumps({"error": "malformed request line"})
                )
                return
            method, target = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1", "replace").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = 0
            if content_length:
                # The admin verbs take no body; read and discard a bounded
                # amount so the reply is not mistaken for a pipelined response.
                await reader.readexactly(min(content_length, _MAX_HTTP_BODY))
            path, _, query_string = target.partition("?")
            await self._dispatch_http(writer, method, path, query_string)
        except ValueError:
            # StreamReader raises ValueError for a request/header line over
            # the stream limit (64 KiB); answer 400 best effort — the
            # connection closes either way, but never as an unhandled
            # task exception.
            try:
                await self._http_respond(
                    writer,
                    400,
                    json.dumps({"error": "request line or header too long"}),
                )
            except Exception:
                pass
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            self._admin_connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    def _debug_threads_text(self) -> str:
        """All-thread stack dump (``GET /debug/threads``), plain text."""
        names = {
            thread.ident: thread.name for thread in threading.enumerate()
        }
        sections = []
        for ident, frame in sorted(sys._current_frames().items()):
            name = names.get(ident, "<unknown>")
            stack = "".join(traceback.format_stack(frame))
            sections.append(f"--- thread {ident} ({name}) ---\n{stack}")
        return "\n".join(sections) or "no threads\n"

    async def _debug_profile_text(self, seconds: float) -> str:
        """Profile the event-loop thread for ``seconds`` (``GET /debug/profile``).

        cProfile runs on the loop thread, so the capture covers exactly the
        work the loop does — protocol parsing, batch coalescing, reply writes
        — while executor/worker CPU time shows up as the time the loop spends
        awaiting them.  Returns pstats text sorted by cumulative time.
        """
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            await asyncio.sleep(seconds)
        finally:
            profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(50)
        return buffer.getvalue()

    async def _dispatch_http(
        self, writer: asyncio.StreamWriter, method: str, path: str, query: str = ""
    ) -> None:
        if path == "/traces":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            params = parse_qs(query)
            try:
                limit = int(params["limit"][0]) if "limit" in params else 32
            except (ValueError, IndexError):
                limit = 32
            await self._http_respond(writer, 200, self.traces_json(limit=limit))
            return
        if path == "/debug/threads":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            await self._http_respond(
                writer,
                200,
                self._debug_threads_text(),
                content_type="text/plain; charset=utf-8",
            )
            return
        if path == "/debug/profile":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            params = parse_qs(query)
            try:
                seconds = float(params["seconds"][0]) if "seconds" in params else 1.0
            except (ValueError, IndexError):
                await self._http_respond(
                    writer, 400, json.dumps({"error": "seconds must be a number"})
                )
                return
            if not seconds > 0:
                await self._http_respond(
                    writer, 400, json.dumps({"error": "seconds must be positive"})
                )
                return
            seconds = min(seconds, _MAX_PROFILE_SECONDS)
            if self._profiling:
                await self._http_respond(
                    writer,
                    409,
                    json.dumps({"error": "a profile capture is already running"}),
                )
                return
            self._profiling = True
            try:
                text = await self._debug_profile_text(seconds)
            finally:
                self._profiling = False
            await self._http_respond(
                writer, 200, text, content_type="text/plain; charset=utf-8"
            )
            return
        if path == "/alerts":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            await self._http_respond(writer, 200, self.alerts_json())
            return
        if path == "/debug/bundle":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            # collect_fingerprint shells out to git; keep the loop responsive
            # by building the bundle on the executor.
            bundle = await self._loop.run_in_executor(
                self._executor, self.diagnostics_bundle
            )
            await self._http_respond(
                writer, 200, json.dumps(bundle, sort_keys=True, default=str)
            )
            return
        if path == "/metrics":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            await self._http_respond(
                writer,
                200,
                self.metrics_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/healthz":
            if method != "GET":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use GET"})
                )
                return
            manager = self.snapshot_manager
            payload = {
                "status": "ok" if self._accepting else "draining",
                "snapshot_version": manager.version if manager is not None else None,
                "connections": self.num_connections,
                "queue_depth": self._pending,
            }
            await self._http_respond(writer, 200, json.dumps(payload, sort_keys=True))
            return
        if path == "/publish":
            if method != "POST":
                await self._http_respond(
                    writer, 405, json.dumps({"error": "use POST"})
                )
                return
            try:
                snapshot = await self.publish()
            except (ServingError, GraphError, IndexBuildError) as exc:
                await self._http_respond(
                    writer, 409, json.dumps({"error": str(exc)})
                )
                return
            await self._http_respond(
                writer,
                200,
                json.dumps(
                    {"published": True, "version": snapshot.version},
                    sort_keys=True,
                ),
            )
            return
        await self._http_respond(
            writer,
            404,
            json.dumps(
                {
                    "error": f"unknown path {path!r}",
                    "paths": [
                        "/metrics",
                        "/healthz",
                        "/publish",
                        "/alerts",
                        "/traces",
                        "/debug/threads",
                        "/debug/profile",
                        "/debug/bundle",
                    ],
                }
            ),
        )

"""Serving glue for the health engine: default rules, monitor, shadow canary.

``repro.obs.health`` is deliberately serving-agnostic; this module binds it to
the serving stack three ways:

* :func:`default_alert_rules` — the rule set every front end ships with,
  written against the shared name registry (``repro.obs.names``) so the rules
  can never drift from the exposition.
* :class:`HealthMonitor` — a daemon thread that periodically feeds
  ``metrics_snapshot()`` into a :class:`~repro.obs.health.HealthEngine`.  A
  plain thread works identically under the threaded and asyncio front ends
  (snapshots are thread-safe on both), and keeps rule evaluation off the
  event loop entirely.
* :class:`ShadowCanary` — online correctness re-verification: a sampled
  fraction of served batches is recomputed through the scalar baseline path
  (:meth:`PrunedLandmarkLabeling.distance`, the paper's Algorithm 2) on a
  bounded background thread, and every divergence increments
  ``shadow_mismatches_total``.  A wrong distance served by an optimised
  kernel becomes a counter, an alert, and — through the benchmark baselines'
  exact-zero gate — a CI failure.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import names
from repro.obs.health import BurnRateRule, DeltaRule, HealthEngine, ThresholdRule

__all__ = [
    "HealthMonitor",
    "ShadowCanary",
    "alerts_wire_reply",
    "augment_snapshot",
    "default_alert_rules",
]

#: Severity vocabulary (Google SRE: pages wake a human, tickets wait for one).
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"


def default_alert_rules(
    *,
    latency_slo_seconds: float = 0.025,
    latency_objective: float = 0.99,
    burn_factor: float = 14.4,
) -> Tuple[object, ...]:
    """The serving rule set: one rule per failure mode the dashboard tracks.

    ``latency_slo_seconds`` must coincide with a histogram bucket bound
    (default 25 ms, a :data:`DEFAULT_LATENCY_BUCKETS` edge) — the burn-rate
    rule counts "good" requests from the cumulative bucket at that bound.
    """
    return (
        # The tentpole rule: multi-window error-budget burn over the PR 6
        # latency histogram.  At objective 0.99 a burn of 14.4 exhausts a
        # 30-day budget in ~2 days — the canonical page-fast threshold.
        BurnRateRule(
            name="LatencySLOBurnRate",
            severity=SEVERITY_PAGE,
            histogram=names.LATENCY_SECONDS,
            objective=latency_objective,
            threshold_seconds=latency_slo_seconds,
            short_window_seconds=60.0,
            long_window_seconds=300.0,
            burn_factor=burn_factor,
            for_seconds=0.0,
            description=(
                f"requests slower than {latency_slo_seconds * 1000:g} ms are "
                f"burning the {latency_objective:.0%} SLO budget at >= "
                f"{burn_factor:g}x in both the 1 m and 5 m windows"
            ),
        ),
        DeltaRule(
            name="ErrorRateHigh",
            severity=SEVERITY_PAGE,
            numerator=(names.NUM_ERRORS, names.NUM_REJECTED),
            denominator=(names.NUM_REQUESTS, names.NUM_REJECTED),
            window_seconds=60.0,
            threshold=0.05,
            for_seconds=30.0,
            description="errors + admission rejections above 5% of requests over 1 m",
        ),
        ThresholdRule(
            name="CacheHitRateCollapse",
            severity=SEVERITY_TICKET,
            metric=names.CACHE_HIT_RATE,
            threshold=0.10,
            op="<",
            guard_metric=names.NUM_QUERIES,
            guard_min=1000.0,
            for_seconds=60.0,
            description="hot-pair cache hit rate below 10% with meaningful traffic",
        ),
        ThresholdRule(
            name="EventLoopLagHigh",
            severity=SEVERITY_TICKET,
            metric=names.EVENT_LOOP_LAG_SECONDS,
            threshold=0.25,
            for_seconds=10.0,
            description="asyncio event-loop scheduling lag above 250 ms",
        ),
        # Mean pause over the window, a deliberate proxy for pause p99: the
        # lock-free GcPauseMonitor exports totals only (adding per-pause
        # histograms to a gc callback is not worth the risk — see its
        # docstring), and a 50 ms *mean* pause already implies a far worse
        # tail.
        DeltaRule(
            name="GcPauseHigh",
            severity=SEVERITY_TICKET,
            numerator=(names.GC_PAUSE_SECONDS_TOTAL,),
            denominator=(names.GC_PAUSES_TOTAL,),
            window_seconds=60.0,
            threshold=0.05,
            for_seconds=30.0,
            description="mean stop-the-world GC pause above 50 ms over 1 m",
        ),
        DeltaRule(
            name="WorkerRespawnSpike",
            severity=SEVERITY_PAGE,
            numerator=(names.NUM_WORKER_RESPAWNS,),
            window_seconds=300.0,
            threshold=0.0,
            for_seconds=0.0,
            description="the sharded worker pool was rebuilt within the last 5 m",
        ),
        ThresholdRule(
            name="DirtyVertexRatioHigh",
            severity=SEVERITY_TICKET,
            metric=names.INDEX_DIRTY_VERTICES,
            denominator=names.INDEX_NUM_VERTICES,
            threshold=0.25,
            for_seconds=60.0,
            description=(
                "more than 25% of vertices dirtied since the last snapshot "
                "publish — incremental updates are outrunning publishes"
            ),
        ),
        DeltaRule(
            name="ShadowMismatch",
            severity=SEVERITY_PAGE,
            numerator=(names.SHADOW_MISMATCHES_TOTAL,),
            window_seconds=300.0,
            threshold=0.0,
            for_seconds=0.0,
            description=(
                "the shadow canary saw a served distance disagree with the "
                "scalar baseline within the last 5 m"
            ),
        ),
    )


class HealthMonitor:
    """Background evaluation of a rule set against live metrics snapshots.

    A daemon thread calls ``snapshot_fn()`` every ``interval_seconds`` and
    folds the result into a :class:`HealthEngine`.  The same object works
    under both front ends: ``QueryServer.metrics_snapshot`` and
    ``AsyncQueryFrontend.metrics_snapshot`` are both safe to call from a
    foreign thread.  :meth:`tick` is public so tests (and benchmarks) can
    drive evaluation deterministically with an explicit clock instead of
    sleeping.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping[str, object]],
        *,
        rules: Optional[Sequence[object]] = None,
        interval_seconds: float = 5.0,
        horizon_seconds: float = 900.0,
        logger: Optional[object] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("health monitor interval must be positive")
        self.engine = HealthEngine(
            default_alert_rules() if rules is None else rules,
            horizon_seconds=horizon_seconds,
            logger=logger,
        )
        self.interval_seconds = float(interval_seconds)
        self._snapshot_fn = snapshot_fn
        self._logger = logger
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Monotone tick counter; written by whichever thread drives tick().
        # Plain int writes are atomic under the GIL and this is test/debug
        # telemetry, so it deliberately takes no lock.
        self.num_ticks = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "HealthMonitor":
        """Start the evaluation thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-pll-health", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the evaluation thread (idempotent, safe before start)."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            self.tick()

    # ------------------------------------------------------------------ #
    # Evaluation and reporting
    # ------------------------------------------------------------------ #

    def tick(self, now: Optional[float] = None) -> List[str]:
        """Evaluate every rule against a fresh snapshot; returns transitions."""
        try:
            snapshot = self._snapshot_fn()
        except Exception as exc:
            # A failing snapshot source must not kill the monitor thread;
            # surface it as an event and keep the previous alert states.
            if self._logger is not None:
                try:
                    self._logger.event("health_snapshot_error", error=repr(exc))
                except Exception:
                    pass
            return []
        events = self.engine.observe(
            snapshot, time.monotonic() if now is None else now
        )
        self.num_ticks += 1
        return events

    def active_alerts(self) -> List[Dict[str, str]]:
        """Pending/firing alerts (the ``ALERTS`` exposition label sets)."""
        return self.engine.active_alerts()

    def alert_gauges(self) -> Dict[str, float]:
        """``alerts_firing`` / ``alerts_pending`` rollup gauges."""
        return self.engine.alert_gauges()

    def alerts_payload(self) -> Dict[str, object]:
        """The ``/alerts`` endpoint body."""
        return self.engine.alerts_payload(time.monotonic())


def alerts_wire_reply(health: Optional[HealthMonitor]) -> str:
    """The ``alerts`` wire-verb / ``GET /alerts`` JSON body.

    Shared by all three front ends so the reply shape cannot drift between
    them (the same reason ``protocol.py`` exists).  A front end without a
    monitor attached reports ``enabled: false`` rather than erroring.
    """
    if health is None:
        payload: Dict[str, object] = {
            "enabled": False,
            "rules": [],
            "firing": [],
            "pending": [],
            "recent": [],
        }
    else:
        payload = health.alerts_payload()
    return json.dumps(payload, sort_keys=True)


def augment_snapshot(
    stats: Dict[str, float],
    *,
    health: Optional[HealthMonitor] = None,
    shadow: Optional["ShadowCanary"] = None,
) -> Dict[str, float]:
    """Merge health-engine gauges and canary counters into one snapshot.

    Called by both front ends' ``metrics_snapshot``; the ``alerts`` list key
    is only present when something is pending/firing, mirroring how the
    renderer treats other optional structured keys.
    """
    if shadow is not None:
        stats.update(shadow.stats())
    if health is not None:
        stats.update(health.alert_gauges())
        active = health.active_alerts()
        if active:
            stats["alerts"] = active  # type: ignore[assignment]
    return stats


#: One queued verification item; ``None`` tells the canary worker to exit.
_WorkItem = Optional[Tuple[object, np.ndarray, np.ndarray, np.ndarray]]


class ShadowCanary:
    """Sampled online re-verification of served distances against the baseline.

    A fraction ``sample_rate`` of served batches is copied onto a bounded
    queue; a single daemon worker replays each pair through the scalar
    label-intersection path (``index.distance`` — the reference
    implementation every kernel is tested against) and counts divergences.
    Exact float equality is the right comparison: unweighted PLL distances
    are integral hop counts (or ``inf`` for disconnected pairs), so any
    difference at all is a wrong answer, not rounding.

    Back-pressure: when the queue is full the batch is *dropped* and counted
    (``shadow_dropped_total``) — the canary samples correctness, it must
    never stall serving.

    Lock discipline (reprolint RL001) — the RNG and counters are shared
    between the submitting (batcher) thread and the worker:

        _rng: guarded-by _lock
        _num_batches: guarded-by _lock
        _num_pairs: guarded-by _lock
        _num_mismatches: guarded-by _lock
        _num_dropped: guarded-by _lock
    """

    def __init__(
        self,
        sample_rate: float,
        *,
        seed: Optional[int] = None,
        max_queue: int = 64,
        max_pairs_per_batch: int = 1024,
        logger: Optional[object] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("shadow sample rate must be within [0, 1]")
        if max_queue <= 0:
            raise ValueError("shadow queue capacity must be positive")
        if max_pairs_per_batch <= 0:
            raise ValueError("shadow max pairs per batch must be positive")
        self.sample_rate = float(sample_rate)
        self.max_pairs_per_batch = int(max_pairs_per_batch)
        self._logger = logger
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._num_batches = 0
        self._num_pairs = 0
        self._num_mismatches = 0
        self._num_dropped = 0
        self._queue: "queue.Queue[_WorkItem]" = queue.Queue(maxsize=max_queue)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ShadowCanary":
        """Start the verification worker (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="repro-pll-shadow", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain outstanding work and stop the worker (idempotent)."""
        thread = self._thread
        if thread is not None and thread.is_alive():
            self._queue.put(None)
            thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "ShadowCanary":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def flush(self) -> None:
        """Block until every queued batch has been verified (for tests/benches)."""
        self._queue.join()

    # ------------------------------------------------------------------ #
    # Submission (batcher thread / event loop)
    # ------------------------------------------------------------------ #

    def maybe_submit(
        self,
        engine: object,
        sources: np.ndarray,
        targets: np.ndarray,
        distances: np.ndarray,
    ) -> bool:
        """Sample this served batch for re-verification; never blocks.

        Returns ``True`` when the batch was enqueued.  The arrays are copied
        before queueing: the batcher reuses/releases its buffers, and the
        verification happens later on another thread.
        """
        if self.sample_rate <= 0.0 or self._thread is None:
            return False
        with self._lock:
            sampled = self._rng.random() < self.sample_rate
        if not sampled:
            return False
        return self.submit(engine, sources, targets, distances)

    def submit(
        self,
        engine: object,
        sources: np.ndarray,
        targets: np.ndarray,
        distances: np.ndarray,
    ) -> bool:
        """Unconditionally enqueue one served batch (sampling already decided)."""
        limit = self.max_pairs_per_batch
        item = (
            engine,
            np.array(sources[:limit], dtype=np.int64, copy=True),
            np.array(targets[:limit], dtype=np.int64, copy=True),
            np.array(distances[:limit], dtype=np.float64, copy=True),
        )
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            with self._lock:
                self._num_dropped += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # Verification (worker thread)
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                engine, sources, targets, served = item
                self._verify(engine, sources, targets, served)
            except Exception as exc:
                if self._logger is not None:
                    try:
                        self._logger.event("shadow_error", error=repr(exc))
                    except Exception:
                        pass
            finally:
                self._queue.task_done()

    @staticmethod
    def _baseline_index(engine: object) -> Optional[object]:
        """The scalar-queryable index behind whatever engine shape serves."""
        index = getattr(engine, "index", None)
        if index is not None:
            return index
        manager = getattr(engine, "snapshot_manager", None)
        current = getattr(manager, "current", None)
        return getattr(current, "index", None)

    def _verify(
        self,
        engine: object,
        sources: np.ndarray,
        targets: np.ndarray,
        served: np.ndarray,
    ) -> None:
        index = self._baseline_index(engine)
        if index is None:
            with self._lock:
                self._num_dropped += 1
            return
        mismatches = []
        for s, t, answer in zip(sources, targets, served):
            expected = float(index.distance(int(s), int(t)))
            if expected != float(answer):
                mismatches.append((int(s), int(t), float(answer), expected))
        with self._lock:
            self._num_batches += 1
            self._num_pairs += int(sources.shape[0])
            self._num_mismatches += len(mismatches)
        if mismatches and self._logger is not None:
            try:
                self._logger.event(
                    "shadow_mismatch",
                    count=len(mismatches),
                    examples=[
                        {"s": s, "t": t, "served": got, "expected": want}
                        for s, t, got, want in mismatches[:5]
                    ],
                )
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, float]:
        """Canary counters, named for direct merge into a metrics snapshot."""
        with self._lock:
            return {
                names.SHADOW_BATCHES_TOTAL: float(self._num_batches),
                names.SHADOW_PAIRS_TOTAL: float(self._num_pairs),
                names.SHADOW_MISMATCHES_TOTAL: float(self._num_mismatches),
                names.SHADOW_DROPPED_TOTAL: float(self._num_dropped),
            }

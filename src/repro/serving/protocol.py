"""Shared parsing and reply formatting for the query wire/CLI protocol.

The query front ends — the one-shot ``repro-pll query`` command, the
threaded server's stdio/TCP sessions and the asyncio front end — accept the
same pair syntax (``s t`` or ``s,t``).  Mutation lines (``add a b``,
``remove a b``, ``publish``) use the same vocabulary in the live protocol
and in ``--mutations`` replay files, and every front end renders replies
through the formatters here.  This module is the single home for that
parsing and formatting so the surfaces cannot drift apart.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "ALERTS_COMMAND",
    "MAX_VERTEX_ID",
    "OP_ADD",
    "OP_PUBLISH",
    "OP_REMOVE",
    "QUIT_COMMANDS",
    "STATS_COMMANDS",
    "TRACES_COMMAND",
    "VERB_ONE_TO_MANY",
    "VERB_PAIR",
    "format_distance_line",
    "format_error",
    "format_mutation_ack",
    "format_one_to_many_reply",
    "format_parse_error",
    "format_publish_ack",
    "is_mutation",
    "is_one_to_many",
    "normalize_command",
    "parse_one_to_many",
    "parse_pair",
    "parse_mutation",
]

#: Largest vertex id representable in the int64 arrays queries are built from.
MAX_VERTEX_ID = 2**63 - 1

#: Canonical mutation operation names — what :func:`parse_mutation` returns
#: and what every front end dispatches on.  Front ends must compare against
#: these constants, never re-spell the strings (enforced by reprolint RL004).
OP_ADD = "add"
OP_REMOVE = "remove"
OP_PUBLISH = "publish"

#: Session-ending command spellings (case-insensitive, whitespace-normalised).
QUIT_COMMANDS = frozenset({"QUIT", "EXIT"})

#: Metrics-snapshot command spellings; both reply with the JSON metrics line.
STATS_COMMANDS = frozenset({"STATS", "STATS JSON"})

#: Recent/slow trace dump command; replies with the trace-ring JSON payload.
TRACES_COMMAND = "TRACES"

#: Health-engine dump command; replies with the alerts JSON payload (rule
#: states, firing/pending subsets, recently resolved) on every front end.
ALERTS_COMMAND = "ALERTS"

#: Canonical per-verb metric labels (``verb_queries_total{verb=...}``).
VERB_PAIR = "pair"
VERB_ONE_TO_MANY = "one_to_many"

#: Accepted spellings for the one-to-many query verb (case-insensitive).
_ONE_TO_MANY_ALIASES = frozenset({"many", "one_to_many", "one-to-many"})


def normalize_command(line: str) -> str:
    """Canonicalise one protocol line for command matching.

    Uppercases and collapses internal whitespace, so ``"stats   json"``
    matches :data:`STATS_COMMANDS`.  Both front ends (threaded and asyncio)
    normalise through here so their command vocabularies cannot drift.
    """
    return " ".join(line.strip().upper().split())


def parse_pair(token: str) -> Tuple[int, int]:
    """Parse one ``s t`` / ``s,t`` token into a vertex-id pair.

    Raises
    ------
    ValueError
        With a human-readable reason (wrong shape, non-integer ids, or ids
        that do not fit 64 bits).  Callers prefix their own context.
    """
    parts = token.replace(",", " ").split()
    if len(parts) != 2:
        raise ValueError("expected 's t' or 's,t'")
    try:
        s, t = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError("vertex ids must be integers") from None
    if abs(s) > MAX_VERTEX_ID or abs(t) > MAX_VERTEX_ID:
        raise ValueError("vertex id does not fit 64 bits")
    return s, t


#: Accepted spellings for each mutation operation.
_MUTATION_ALIASES = {
    "add": OP_ADD,
    "insert": OP_ADD,
    "remove": OP_REMOVE,
    "delete": OP_REMOVE,
    "publish": OP_PUBLISH,
}


def is_mutation(line: str) -> bool:
    """Whether a protocol line is a mutation (vs a query pair).

    Uses the same tokenisation as :func:`parse_mutation`, so every line that
    parser accepts — including fully comma-separated forms like ``add,0,2``
    — is routed to it.
    """
    parts = line.replace(",", " ").split()
    return bool(parts) and parts[0].lower() in _MUTATION_ALIASES


def parse_mutation(line: str) -> Tuple[str, Optional[Tuple[int, int]]]:
    """Parse one mutation line into ``(op, endpoints)``.

    Accepted forms (case-insensitive): ``add a b`` / ``insert a b``,
    ``remove a b`` / ``delete a b``, and the bare ``publish``.  Edge
    endpoints follow the same ``a b`` / ``a,b`` syntax as query pairs.
    ``endpoints`` is ``None`` for ``publish``.

    Raises
    ------
    ValueError
        With a human-readable reason; callers prefix their own context.
    """
    parts = line.replace(",", " ").split()
    if not parts:
        raise ValueError("empty mutation line")
    op = _MUTATION_ALIASES.get(parts[0].lower())
    if op is None:
        raise ValueError(
            f"unknown mutation {parts[0]!r}; expected add, remove or publish"
        )
    if op == OP_PUBLISH:
        if len(parts) != 1:
            raise ValueError("publish takes no arguments")
        return op, None
    return op, parse_pair(" ".join(parts[1:]))


def is_one_to_many(line: str) -> bool:
    """Whether a protocol line is a one-to-many query (``many s t1 t2 ...``).

    Same tokenisation as :func:`parse_one_to_many`, so every line that parser
    accepts — including comma-separated forms like ``many,0,1,2`` — is routed
    to it.
    """
    parts = line.replace(",", " ").split()
    return bool(parts) and parts[0].lower() in _ONE_TO_MANY_ALIASES


def parse_one_to_many(line: str) -> Tuple[int, Tuple[int, ...]]:
    """Parse one one-to-many line into ``(source, targets)``.

    Accepted forms (case-insensitive): ``many s t1 [t2 ...]``, with
    ``one_to_many`` / ``one-to-many`` as verb aliases and the same mixed
    space/comma tokenisation as query pairs.  At least one explicit target is
    required — the reply carries one line per target, so the client must know
    how many lines to read back.

    Raises
    ------
    ValueError
        With a human-readable reason; callers prefix their own context.
    """
    parts = line.replace(",", " ").split()
    if not parts or parts[0].lower() not in _ONE_TO_MANY_ALIASES:
        raise ValueError("expected 'many s t1 [t2 ...]'")
    if len(parts) < 3:
        raise ValueError("one-to-many needs a source and at least one target")
    try:
        ids = [int(part) for part in parts[1:]]
    except ValueError:
        raise ValueError("vertex ids must be integers") from None
    if any(abs(v) > MAX_VERTEX_ID for v in ids):
        raise ValueError("vertex id does not fit 64 bits")
    return ids[0], tuple(ids[1:])


def format_one_to_many_reply(
    source: int, targets: Tuple[int, ...], distances
) -> str:
    """Render a one-to-many reply: one :func:`format_distance_line` per target.

    The lines are joined with ``\\n`` (the session handler appends the final
    newline), in target order, so a client that sent N targets reads exactly
    N reply lines in the same shape as point queries.
    """
    return "\n".join(
        format_distance_line(source, target, float(distance))
        for target, distance in zip(targets, distances)
    )


def format_distance_line(s: int, t: int, distance: float) -> str:
    """Render one query reply line (``s<TAB>t<TAB>distance``, ``inf`` spelled out)."""
    rendered = "inf" if distance == float("inf") else f"{distance:g}"
    return f"{s}\t{t}\t{rendered}"


def format_mutation_ack(op: str, a: int, b: int, pending: int) -> str:
    """Render the acknowledgement for an applied ``add``/``remove`` mutation."""
    return f"ok {op} ({a}, {b}); {pending} updates pending publish"


def format_publish_ack(version: int) -> str:
    """Render the acknowledgement for a published snapshot."""
    return f"ok published version={version}"


def format_error(reason: object) -> str:
    """Render an error reply line (``error: <reason>``).

    ``reason`` is typically a caught exception; front ends must route every
    wire error through here (or :func:`format_parse_error`) so the reply
    shape stays identical across the stdio, threaded and asyncio surfaces.
    """
    return f"error: {reason}"


def format_parse_error(kind: str, line: str, reason: object) -> str:
    """Render the reply for an unparsable ``query``/``mutation`` line.

    The offending input is echoed back ``repr``-quoted so clients (and the
    equality tests) see exactly which bytes were rejected.
    """
    return f"error: cannot parse {kind} {line!r}; {reason}"

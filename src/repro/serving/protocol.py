"""Shared parsing for the query wire/CLI protocol.

Both query front ends — the one-shot ``repro-pll query`` command and the
line protocol spoken by the server's stdio/TCP sessions — accept the same
pair syntax (``s t`` or ``s,t``).  This module is the single home for that
parsing so the two surfaces cannot drift apart.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["MAX_VERTEX_ID", "parse_pair"]

#: Largest vertex id representable in the int64 arrays queries are built from.
MAX_VERTEX_ID = 2**63 - 1


def parse_pair(token: str) -> Tuple[int, int]:
    """Parse one ``s t`` / ``s,t`` token into a vertex-id pair.

    Raises
    ------
    ValueError
        With a human-readable reason (wrong shape, non-integer ids, or ids
        that do not fit 64 bits).  Callers prefix their own context.
    """
    parts = token.replace(",", " ").split()
    if len(parts) != 2:
        raise ValueError("expected 's t' or 's,t'")
    try:
        s, t = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError("vertex ids must be integers") from None
    if abs(s) > MAX_VERTEX_ID or abs(t) > MAX_VERTEX_ID:
        raise ValueError("vertex id does not fit 64 bits")
    return s, t

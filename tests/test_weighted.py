"""Tests for the weighted (pruned Dijkstra) variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.weighted import WeightedPrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError
from repro.generators import assign_random_weights, barabasi_albert_graph, grid_graph
from repro.graph.csr import Graph
from repro.graph.traversal import dijkstra_distances
from tests.conftest import sample_pairs


class TestWeightedIndex:
    def test_unbuilt_raises(self):
        oracle = WeightedPrunedLandmarkLabeling()
        with pytest.raises(IndexStateError):
            oracle.distance(0, 1)

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            WeightedPrunedLandmarkLabeling().build(graph)

    def test_grid_exactness(self, small_weighted_graph):
        oracle = WeightedPrunedLandmarkLabeling().build(small_weighted_graph)
        for source in range(0, small_weighted_graph.num_vertices, 7):
            truth = dijkstra_distances(small_weighted_graph, source)
            for target in range(small_weighted_graph.num_vertices):
                assert np.isclose(oracle.distance(source, target), truth[target]) or (
                    np.isinf(truth[target]) and np.isinf(oracle.distance(source, target))
                )

    def test_weighted_social_graph_exactness(self):
        graph = assign_random_weights(
            barabasi_albert_graph(150, 2, seed=3), low=1, high=9, seed=3
        )
        oracle = WeightedPrunedLandmarkLabeling().build(graph)
        for s, t in sample_pairs(graph, 150, seed=4):
            truth = dijkstra_distances(graph, s)[t]
            got = oracle.distance(s, t)
            assert np.isclose(got, truth) or (np.isinf(got) and np.isinf(truth))

    def test_unweighted_graph_also_works(self, small_social_graph):
        oracle = WeightedPrunedLandmarkLabeling().build(small_social_graph)
        truth = dijkstra_distances(small_social_graph, 0)
        for t in range(0, small_social_graph.num_vertices, 11):
            assert np.isclose(oracle.distance(0, t), truth[t])

    def test_self_distance(self, small_weighted_graph):
        oracle = WeightedPrunedLandmarkLabeling().build(small_weighted_graph)
        assert oracle.distance(5, 5) == 0.0

    def test_disconnected_inf(self):
        graph = Graph(4, [(0, 1), (2, 3)], weights=[1.0, 2.0])
        oracle = WeightedPrunedLandmarkLabeling().build(graph)
        assert oracle.distance(0, 3) == float("inf")

    def test_batch_queries(self, small_weighted_graph):
        oracle = WeightedPrunedLandmarkLabeling().build(small_weighted_graph)
        pairs = sample_pairs(small_weighted_graph, 20, seed=5)
        batch = oracle.distances(pairs)
        assert batch.shape[0] == 20

    def test_label_introspection(self, small_weighted_graph):
        oracle = WeightedPrunedLandmarkLabeling().build(small_weighted_graph)
        assert oracle.average_label_size() >= 1.0
        assert oracle.index_size_bytes() > 0
        assert oracle.build_seconds > 0
        sizes = oracle.label_set.label_sizes()
        assert sizes.shape[0] == small_weighted_graph.num_vertices

    def test_explicit_order(self, small_weighted_graph):
        n = small_weighted_graph.num_vertices
        oracle = WeightedPrunedLandmarkLabeling().build(
            small_weighted_graph, order=list(range(n))
        )
        truth = dijkstra_distances(small_weighted_graph, 3)
        assert np.isclose(oracle.distance(3, n - 1), truth[n - 1])

    def test_bad_order_rejected(self, small_weighted_graph):
        with pytest.raises(IndexBuildError):
            WeightedPrunedLandmarkLabeling().build(
                small_weighted_graph, order=[0, 0, 1]
            )

    def test_pruning_keeps_labels_small(self):
        graph = grid_graph(8, 8, weighted=True, seed=1)
        oracle = WeightedPrunedLandmarkLabeling().build(graph)
        # Far below the n entries per vertex a naive scheme would store.
        assert oracle.average_label_size() < graph.num_vertices / 2


class TestWeightedProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        n=st.integers(min_value=5, max_value=30),
    )
    def test_random_weighted_graphs_match_dijkstra(self, seed, n):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(n - 1, 3 * n))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(num_edges)
        ]
        weights = [float(w) for w in rng.uniform(0.5, 5.0, size=num_edges)]
        graph = Graph(n, edges, weights=weights)
        oracle = WeightedPrunedLandmarkLabeling().build(graph)
        s = int(rng.integers(0, n))
        truth = dijkstra_distances(graph, s)
        for t in range(n):
            got = oracle.distance(s, t)
            assert np.isclose(got, truth[t]) or (np.isinf(got) and np.isinf(truth[t]))

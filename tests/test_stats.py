"""Tests for index statistics collection."""

from __future__ import annotations

from repro.core.index import PrunedLandmarkLabeling
from repro.core.stats import collect_index_stats, label_size_percentiles


class TestIndexStats:
    def test_collect_basic_fields(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        stats = collect_index_stats(index)
        assert stats.num_vertices == medium_social_graph.num_vertices
        assert stats.num_edges == medium_social_graph.num_edges
        assert stats.total_label_entries == index.label_set.total_entries()
        assert stats.average_label_size == index.average_label_size()
        assert stats.max_label_size >= stats.average_label_size
        assert stats.num_bit_parallel_roots == 4
        assert stats.index_size_bytes == index.index_size_bytes()

    def test_percentiles_monotone(self, medium_social_graph):
        index = PrunedLandmarkLabeling().build(medium_social_graph)
        percentiles = label_size_percentiles(index)
        keys = sorted(percentiles)
        values = [percentiles[k] for k in keys]
        assert values == sorted(values)
        assert percentiles[100] == index.label_set.label_sizes().max()

    def test_custom_percentiles(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        percentiles = label_size_percentiles(index, [50])
        assert set(percentiles) == {50}

    def test_as_dict_flattens_percentiles(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        record = collect_index_stats(index).as_dict()
        assert "label_size_p50" in record
        assert record["num_vertices"] == small_social_graph.num_vertices

"""Per-rule fixtures for the reprolint analyzers (RL001–RL008).

Each rule gets at least a true-positive, a suppressed, and a clean fixture.
Fixtures are in-memory modules linted through :func:`check_source` under a
*virtual path*, which is how the location-scoped rules (RL004, RL005) are
opted in or out.
"""

from __future__ import annotations

import textwrap

from repro.analysis.base import all_rules, get_rule
from repro.analysis.runner import check_source


def _lint(source: str, *, path: str = "src/repro/serving/module.py", rule=None):
    rules = [get_rule(rule)] if rule is not None else None
    return check_source(textwrap.dedent(source), path, rules)


def test_all_rules_registered():
    ids = [rule.id for rule in all_rules()]
    assert ids == [
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
        "RL008",
    ]
    for rule in all_rules():
        assert rule.name and rule.description and rule.rationale


# ---------------------------------------------------------------------------
# RL001 — lock discipline
# ---------------------------------------------------------------------------


RL001_TRUE_POSITIVE = """
import threading

class Metrics:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def record(self):
        with self._lock:
            self._count += 1

    def snapshot(self):
        return self._count
"""


def test_rl001_flags_bare_read_of_guarded_attribute():
    findings = _lint(RL001_TRUE_POSITIVE, rule="RL001")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "RL001"
    assert finding.symbol == "Metrics.snapshot"
    assert "_count" in finding.message and "self._lock" in finding.message
    assert "read" in finding.message


def test_rl001_flags_bare_write_through():
    findings = _lint(
        """
        class Table:
            def put(self, key, value):
                with self._lock:
                    self._rows[key] = value

            def evict(self, key):
                self._rows[key] = None
        """,
        rule="RL001",
    )
    assert len(findings) == 1
    assert findings[0].symbol == "Table.evict"
    assert "written" in findings[0].message


def test_rl001_clean_when_every_access_holds_the_lock():
    findings = _lint(
        """
        class Metrics:
            def record(self):
                with self._lock:
                    self._count += 1

            def snapshot(self):
                with self._lock:
                    return self._count
        """,
        rule="RL001",
    )
    assert findings == []


def test_rl001_suppression_comment_silences_the_line():
    findings = _lint(
        RL001_TRUE_POSITIVE.replace(
            "return self._count",
            "return self._count  # reprolint: disable=RL001 -- optimistic read",
        ),
        rule="RL001",
    )
    assert findings == []


def test_rl001_docstring_annotation_declares_invisible_guard():
    # _latencies is only ever *called through*, never assigned under the
    # lock, so inference alone cannot see the guard — the annotation does.
    findings = _lint(
        """
        class Metrics:
            '''Histogram sink.

            Lock discipline:
                _latencies: guarded-by _lock
            '''

            def record(self, value):
                with self._lock:
                    self._latencies.record(value)

            def snapshot(self):
                return self._latencies.percentiles()
        """,
        rule="RL001",
    )
    assert len(findings) == 1
    assert findings[0].symbol == "Metrics.snapshot"


def test_rl001_init_and_locked_methods_exempt():
    findings = _lint(
        """
        class Cache:
            def __init__(self):
                self._entries = {}

            def put(self, key, value):
                with self._lock:
                    self._entries[key] = value

            def _get_locked(self, key):
                return self._entries.get(key)
        """,
        rule="RL001",
    )
    assert findings == []


def test_rl001_nested_closure_does_not_inherit_the_lock():
    findings = _lint(
        """
        class Pool:
            def submit(self):
                with self._lock:
                    self._jobs += 1
                    def task():
                        return self._jobs
                    return task
        """,
        rule="RL001",
    )
    assert len(findings) == 1
    assert "read" in findings[0].message


# ---------------------------------------------------------------------------
# RL002 — blocking calls in async bodies
# ---------------------------------------------------------------------------


def test_rl002_flags_time_sleep_in_async_def():
    findings = _lint(
        """
        import time

        async def handler():
            time.sleep(0.1)
        """,
        rule="RL002",
    )
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message
    assert findings[0].symbol == "handler"


def test_rl002_flags_timed_future_result_and_shutdown_wait():
    findings = _lint(
        """
        async def drain(self):
            value = self._future.result(5.0)
            self._executor.shutdown(wait=True)
        """,
        rule="RL002",
    )
    messages = [finding.message for finding in findings]
    assert len(findings) == 2
    assert any("Future.result" in message for message in messages)
    assert any("shutdown" in message for message in messages)


def test_rl002_clean_bare_result_and_sync_function():
    findings = _lint(
        """
        import time

        def sync_path():
            time.sleep(0.1)

        async def fetch(self):
            return self._done_future.result()
        """,
        rule="RL002",
    )
    assert findings == []


def test_rl002_awaited_join_is_not_blocking():
    # ``await queue.join()`` yields to the loop; ``thread.join()`` parks it.
    findings = _lint(
        """
        async def drain(self):
            await self._queue.join()
            self._thread.join()
        """,
        rule="RL002",
    )
    assert len(findings) == 1
    assert ".join()" in findings[0].message


def test_rl002_nested_sync_closure_exempt():
    # A sync closure is what gets handed to run_in_executor — that is the fix.
    findings = _lint(
        """
        async def persist(self, path, payload):
            def write():
                path.write_text(payload)
            await self._loop.run_in_executor(None, write)
        """,
        rule="RL002",
    )
    assert findings == []


def test_rl002_suppression():
    findings = _lint(
        """
        import time

        async def handler():
            # reprolint: disable=RL002
            time.sleep(0.1)
        """,
        rule="RL002",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL003 — shared-memory lifecycle
# ---------------------------------------------------------------------------


def test_rl003_flags_unowned_allocation():
    findings = _lint(
        """
        from multiprocessing import shared_memory

        def leak(nbytes, payload):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            shm.buf[: len(payload)] = payload
        """,
        rule="RL003",
    )
    assert len(findings) == 1
    assert findings[0].symbol == "leak"
    assert "may leak" in findings[0].message


def test_rl003_clean_ownership_patterns():
    findings = _lint(
        """
        from multiprocessing import shared_memory

        def ctx(nbytes):
            with shared_memory.SharedMemory(create=True, size=nbytes) as shm:
                return bytes(shm.buf)

        def transfer(nbytes):
            return shared_memory.SharedMemory(create=True, size=nbytes)

        def tryfinally(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            try:
                return bytes(shm.buf)
            finally:
                shm.close()

        def refcounted(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            return SharedGeneration([shm])

        class Store:
            def attach(self, name):
                self._segments[name] = shared_memory.SharedMemory(name=name)
        """,
        rule="RL003",
    )
    assert findings == []


def test_rl003_exception_path_without_finally_is_flagged():
    # close() on the happy path only — the exception path still leaks.
    findings = _lint(
        """
        from multiprocessing import shared_memory

        def risky(nbytes, payload):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            shm.buf[: len(payload)] = payload
            shm.close()
        """,
        rule="RL003",
    )
    assert len(findings) == 1


def test_rl003_suppression():
    findings = _lint(
        """
        from multiprocessing import shared_memory

        def leak(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)  # reprolint: disable=RL003
            return shm.name
        """,
        rule="RL003",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL004 — protocol drift (scoped to the wire front ends)
# ---------------------------------------------------------------------------


RL004_DRIFT = """
def handle(op, distance):
    if op == "add":
        return f"error: bad op {op}"
    return "ok " + str(distance)
"""


def test_rl004_flags_inline_replies_and_vocabulary():
    findings = _lint(RL004_DRIFT, path="src/repro/serving/server.py", rule="RL004")
    assert len(findings) == 3
    messages = " ".join(finding.message for finding in findings)
    assert "protocol vocabulary literal 'add'" in messages
    assert "f-string" in messages
    assert "reply literal" in messages


def test_rl004_out_of_scope_module_untouched():
    # Same source under a non-front-end path: protocol.py itself (and any
    # other module) is allowed to define the very literals it exports.
    findings = _lint(RL004_DRIFT, path="src/repro/serving/protocol.py", rule="RL004")
    assert findings == []


def test_rl004_flags_wire_bytes_literal():
    findings = _lint(
        """
        REPLY = b"error: shutting down"
        """,
        path="src/repro/serving/aio.py",
        rule="RL004",
    )
    assert len(findings) == 1
    assert "bytes" in findings[0].message


def test_rl004_http_admin_strings_untouched():
    findings = _lint(
        """
        async def admin(self, request):
            if request.path == "/healthz":
                return {"content-type": "application/json"}
        """,
        path="src/repro/serving/aio.py",
        rule="RL004",
    )
    assert findings == []


def test_rl004_suppression():
    findings = _lint(
        """
        BANNER = "error: legacy banner"  # reprolint: disable=RL004
        """,
        path="src/repro/serving/server.py",
        rule="RL004",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL005 — dtype discipline (scoped to core/ and serving/)
# ---------------------------------------------------------------------------


def test_rl005_flags_implicit_float64():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            return np.zeros(n)
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert len(findings) == 1
    assert "np.zeros" in findings[0].message


def test_rl005_accepts_keyword_and_positional_dtype():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            a = np.zeros(n, dtype=np.int32)
            b = np.empty(n, np.uint16)
            c = np.full(n, -1, np.int64)
            d = np.zeros_like(a)
            return a, b, c, d
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert findings == []


def test_rl005_out_of_scope_path_untouched():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            return np.zeros(n)
        """,
        path="src/repro/experiments/table3.py",
        rule="RL005",
    )
    assert findings == []


def test_rl005_suppression():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            return np.zeros(n)  # reprolint: disable=RL005
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL006 — kernel hot loops (scoped to core/kernels/ and core/query.py)
# ---------------------------------------------------------------------------


def test_rl006_flags_comprehension_in_query_pairs():
    findings = _lint(
        """
        class Kernel:
            def query_pairs(self, sources, targets):
                return [self._one(s, t) for s, t in zip(sources, targets)]
        """,
        path="src/repro/core/kernels/bad.py",
        rule="RL006",
    )
    assert len(findings) == 1
    assert "query_pairs" in findings[0].message


def test_rl006_flags_dict_comprehension_in_one_to_many():
    findings = _lint(
        """
        def query_one_to_many(source, targets):
            return {t: dist(source, t) for t in targets}
        """,
        path="src/repro/core/query.py",
        rule="RL006",
    )
    assert len(findings) == 1
    assert "dict comprehension" in findings[0].message


def test_rl006_generator_expressions_and_other_functions_exempt():
    findings = _lint(
        """
        def query_pairs(sources, targets):
            assert all(s >= 0 for s in sources)
            return _vectorised(sources, targets)

        def helper(items):
            return [x + 1 for x in items]
        """,
        path="src/repro/core/kernels/ok.py",
        rule="RL006",
    )
    assert findings == []


def test_rl006_out_of_scope_path_untouched():
    findings = _lint(
        """
        def query_pairs(sources, targets):
            return [1 for _ in sources]
        """,
        path="src/repro/serving/engine.py",
        rule="RL006",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL007 — bench scripts must emit through the obs schema
# ---------------------------------------------------------------------------


def test_rl007_flags_missing_adapter_and_json_writer():
    findings = _lint(
        """
        import json

        def run():
            json.dump({"qps": 1.0}, open("out.json", "w"))
            return json.dumps({"qps": 1.0})
        """,
        path="benchmarks/bench_fixture.py",
        rule="RL007",
    )
    assert len(findings) == 3
    assert any("collect_results" in f.message for f in findings)
    assert sum("json.dump" in f.message for f in findings) == 2


def test_rl007_clean_with_adapter_and_no_json_writes():
    findings = _lint(
        """
        import json

        def collect_results(*, smoke=False):
            from repro.obs import bench_result
            payload = json.loads('{"qps": 1.0}')
            return bench_result("fixture", [("qps", payload["qps"])], smoke=smoke)
        """,
        path="benchmarks/bench_fixture.py",
        rule="RL007",
    )
    assert findings == []


def test_rl007_out_of_scope_paths_untouched():
    source = """
    import json

    def run():
        json.dumps({})
    """
    for path in ("benchmarks/conftest.py", "src/repro/obs/schema.py", "tools/bench_x.py"):
        assert _lint(source, path=path, rule="RL007") == []


def test_rl007_suppression():
    findings = _lint(
        """
        import json

        def collect_results(*, smoke=False):
            return None

        def legacy_dump(results):
            return json.dumps(results)  # reprolint: disable=RL007
        """,
        path="benchmarks/bench_legacy.py",
        rule="RL007",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL008 — metric names come from the repro.obs.names registry
# ---------------------------------------------------------------------------


def test_rl008_flags_registered_name_spelled_inline():
    findings = _lint(
        """
        def snapshot():
            return {"cache_hit_rate": 1.0}
        """,
        path="src/repro/serving/metrics.py",
        rule="RL008",
    )
    assert len(findings) == 1
    assert "repro.obs.names constant" in findings[0].message


def test_rl008_flags_unregistered_metric_shaped_literal():
    findings = _lint(
        """
        def snapshot():
            return {"made_up_widgets_total": 1.0}
        """,
        path="src/repro/serving/alerts.py",
        rule="RL008",
    )
    assert len(findings) == 1
    assert "not in" in findings[0].message
    assert "register" in findings[0].message


def test_rl008_clean_with_constants_fstrings_and_structural_keys():
    findings = _lint(
        '''
        from repro.obs import names

        def snapshot(name):
            """Docstring mentioning shadow_mismatches_total stays exempt."""
            return {
                names.CACHE_HIT_RATE: 1.0,
                f"latency_{name}_ms": 2.0,
                "num_shards": 4,
                "buckets": [],
            }
        ''',
        path="src/repro/obs/health.py",
        rule="RL008",
    )
    assert findings == []


def test_rl008_out_of_scope_paths_untouched():
    source = """
    def snapshot():
        return {"cache_hit_rate": 1.0, "made_up_widgets_total": 2.0}
    """
    for path in (
        "src/repro/obs/names.py",
        "src/repro/serving/server.py",
        "src/repro/obs/resources.py",
    ):
        assert _lint(source, path=path, rule="RL008") == []


def test_rl008_suppression():
    findings = _lint(
        """
        def probe(engine):
            return getattr(engine, "kernel_info", None)  # reprolint: disable=RL008
        """,
        path="src/repro/serving/metrics.py",
        rule="RL008",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Suppression mechanics shared by every rule
# ---------------------------------------------------------------------------


def test_disable_file_suppresses_whole_module():
    findings = _lint(
        """
        # reprolint: disable-file=RL005
        import numpy as np

        def a(n):
            return np.zeros(n)

        def b(n):
            return np.empty(n)
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert findings == []


def test_bare_disable_silences_every_rule_on_the_line():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            return np.zeros(n)  # reprolint: disable
        """,
        path="src/repro/core/labels.py",
    )
    assert findings == []


def test_suppression_for_other_rule_does_not_silence():
    findings = _lint(
        """
        import numpy as np

        def alloc(n):
            return np.zeros(n)  # reprolint: disable=RL001
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert len(findings) == 1


def test_hash_inside_string_is_not_a_suppression():
    findings = _lint(
        """
        import numpy as np

        MARKER = "# reprolint: disable=RL005"

        def alloc(n):
            return np.zeros(n)
        """,
        path="src/repro/core/labels.py",
        rule="RL005",
    )
    assert len(findings) == 1


def test_fingerprint_stable_across_line_shifts():
    source = """
    import numpy as np

    def alloc(n):
        return np.zeros(n)
    """
    before = _lint(source, path="src/repro/core/labels.py", rule="RL005")
    after = _lint("\n\n\n" + textwrap.dedent(source), path="src/repro/core/labels.py", rule="RL005")
    assert before[0].line != after[0].line
    assert before[0].fingerprint == after[0].fingerprint

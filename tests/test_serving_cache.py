"""Tests for the hot-pair LRU cache: eviction order and counter correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import LRUCache


class TestLRUBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get(1, 2) is None
        cache.put(1, 2, 3.0)
        assert cache.get(1, 2) == 3.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_symmetric_normalisation(self):
        cache = LRUCache(4)
        cache.put(5, 2, 7.0)
        assert cache.get(2, 5) == 7.0
        assert (2, 5) in cache and (5, 2) in cache
        assert len(cache) == 1

    def test_asymmetric_mode_keeps_directions_distinct(self):
        cache = LRUCache(4, symmetric=False)
        cache.put(1, 2, 3.0)
        assert cache.get(2, 1) is None
        cache.put(2, 1, 4.0)
        assert cache.get(1, 2) == 3.0
        assert cache.get(2, 1) == 4.0
        assert len(cache) == 2


class TestEvictionOrder:
    def test_least_recently_used_is_evicted(self):
        cache = LRUCache(2)
        cache.put(0, 1, 1.0)
        cache.put(0, 2, 2.0)
        # Touch (0, 1) so (0, 2) becomes the LRU entry.
        assert cache.get(0, 1) == 1.0
        cache.put(0, 3, 3.0)
        assert (0, 2) not in cache
        assert cache.get(0, 1) == 1.0
        assert cache.get(0, 3) == 3.0
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put(0, 1, 1.0)
        cache.put(0, 2, 2.0)
        cache.put(0, 1, 1.5)  # rewrite refreshes recency, no eviction
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        cache.put(0, 3, 3.0)
        assert (0, 2) not in cache
        assert cache.get(0, 1) == 1.5

    def test_eviction_sequence_matches_access_order(self):
        cache = LRUCache(3)
        for i in range(3):
            cache.put(i, 100, float(i))
        cache.get(0, 100)
        cache.get(1, 100)
        # LRU order is now: 2, 0, 1.
        cache.put(50, 100, 50.0)
        assert (2, 100) not in cache
        cache.put(51, 100, 51.0)
        assert (0, 100) not in cache
        assert cache.stats.evictions == 2
        assert cache.keys()[-1] == (51, 100)

    def test_size_never_exceeds_capacity(self):
        cache = LRUCache(8)
        for i in range(100):
            cache.put(i, i + 1, float(i))
        assert len(cache) == 8
        assert cache.stats.evictions == 92


class TestCounters:
    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.stats.hit_rate == 0.0
        cache.put(0, 1, 1.0)
        cache.get(0, 1)
        cache.get(0, 1)
        cache.get(9, 9)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.lookups == 3
        as_dict = cache.stats.as_dict()
        assert as_dict["hits"] == 2 and as_dict["evictions"] == 0

    def test_contains_does_not_touch_counters(self):
        cache = LRUCache(4)
        cache.put(0, 1, 1.0)
        assert (0, 1) in cache
        assert (7, 8) not in cache
        assert cache.stats.lookups == 0

    def test_clear_preserves_counters(self):
        cache = LRUCache(4)
        cache.put(0, 1, 1.0)
        cache.get(0, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestBatchHelpers:
    def test_lookup_and_store_batch(self):
        cache = LRUCache(16)
        sources = np.array([0, 1, 2])
        targets = np.array([5, 6, 7])
        distances, missing = cache.lookup_batch(sources, targets)
        assert missing.all()
        cache.store_batch(sources, targets, np.array([1.0, 2.0, 3.0]))
        distances, missing = cache.lookup_batch(sources, targets)
        assert not missing.any()
        assert np.array_equal(distances, [1.0, 2.0, 3.0])

    def test_partial_hits(self):
        cache = LRUCache(16)
        cache.put(0, 5, 1.0)
        distances, missing = cache.lookup_batch(
            np.array([0, 1]), np.array([5, 6])
        )
        assert not missing[0] and missing[1]
        assert distances[0] == 1.0

"""Unit and property tests for graph traversals (BFS, bidirectional BFS, Dijkstra)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_distance,
    bfs_distances,
    bfs_tree,
    bidirectional_bfs_distance,
    dijkstra_distances,
    dijkstra_tree,
    eccentricity,
    multi_source_bfs,
)
from tests.conftest import random_test_graphs


class TestBFS:
    def test_path_graph_distances(self, path_graph):
        dist = bfs_distances(path_graph, 0)
        assert list(dist) == [0, 1, 2, 3, 4]

    def test_star_graph_distances(self, star_graph):
        dist = bfs_distances(star_graph, 1)
        assert dist[1] == 0
        assert dist[0] == 1
        assert all(dist[i] == 2 for i in range(2, 6))

    def test_unreachable_marked(self, disconnected_graph):
        dist = bfs_distances(disconnected_graph, 0)
        assert dist[3] == UNREACHABLE
        assert dist[5] == UNREACHABLE
        assert dist[2] == 1

    def test_source_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            bfs_distances(path_graph, 10)

    def test_directed_forward_and_reverse(self):
        graph = Graph(3, [(0, 1), (1, 2)], directed=True)
        forward = bfs_distances(graph, 0)
        assert list(forward) == [0, 1, 2]
        backward = bfs_distances(graph, 2, reverse=True)
        assert list(backward) == [2, 1, 0]

    def test_bfs_distance_single_pair(self, cycle_graph):
        assert bfs_distance(cycle_graph, 0, 3) == 3.0
        assert bfs_distance(cycle_graph, 0, 5) == 1.0

    def test_bfs_distance_disconnected(self, disconnected_graph):
        assert bfs_distance(disconnected_graph, 0, 4) == float("inf")


class TestBFSTree:
    def test_parents_form_shortest_paths(self, small_social_graph):
        dist, parent = bfs_tree(small_social_graph, 0)
        for v in range(small_social_graph.num_vertices):
            if dist[v] <= 0:
                continue
            p = parent[v]
            assert p >= 0
            assert dist[p] == dist[v] - 1
            assert small_social_graph.has_edge(int(p), v)

    def test_root_has_no_parent(self, path_graph):
        dist, parent = bfs_tree(path_graph, 2)
        assert parent[2] == -1
        assert dist[2] == 0

    def test_unreachable_have_no_parent(self, disconnected_graph):
        dist, parent = bfs_tree(disconnected_graph, 0)
        assert parent[4] == -1
        assert dist[4] == UNREACHABLE


class TestMultiSourceBFS:
    def test_nearest_source_wins(self, path_graph):
        dist = multi_source_bfs(path_graph, [0, 4])
        assert list(dist) == [0, 1, 2, 1, 0]

    def test_empty_sources(self, path_graph):
        dist = multi_source_bfs(path_graph, [])
        assert all(d == UNREACHABLE for d in dist)

    def test_source_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            multi_source_bfs(path_graph, [0, 99])


class TestBidirectionalBFS:
    def test_matches_bfs_on_random_graphs(self):
        rng = np.random.default_rng(3)
        for graph in random_test_graphs(4, seed=11):
            n = graph.num_vertices
            for _ in range(25):
                s, t = int(rng.integers(0, n)), int(rng.integers(0, n))
                expected = bfs_distance(graph, s, t)
                assert bidirectional_bfs_distance(graph, s, t) == expected

    def test_same_vertex(self, path_graph):
        assert bidirectional_bfs_distance(path_graph, 2, 2) == 0.0

    def test_disconnected(self, disconnected_graph):
        assert bidirectional_bfs_distance(disconnected_graph, 0, 3) == float("inf")

    def test_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            bidirectional_bfs_distance(path_graph, 0, 50)


class TestDijkstra:
    def test_unweighted_matches_bfs(self, small_social_graph):
        bfs = bfs_distances(small_social_graph, 0).astype(np.float64)
        bfs[bfs == UNREACHABLE] = np.inf
        dijkstra = dijkstra_distances(small_social_graph, 0)
        assert np.allclose(bfs, dijkstra)

    def test_weighted_shortest_path(self):
        # 0 -5- 1 -5- 2 and a direct 0 -2- 2 shortcut.
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)], weights=[5.0, 5.0, 2.0])
        dist = dijkstra_distances(graph, 0)
        assert dist[2] == 2.0
        assert dist[1] == 5.0

    def test_weighted_goes_around(self):
        # Direct edge is more expensive than the two-hop route.
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 10.0])
        dist = dijkstra_distances(graph, 0)
        assert dist[2] == 2.0

    def test_unreachable_is_inf(self, disconnected_graph):
        dist = dijkstra_distances(disconnected_graph, 0)
        assert np.isinf(dist[3])

    def test_source_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            dijkstra_distances(path_graph, -1)

    def test_dijkstra_tree_parents(self, small_weighted_graph):
        dist, parent = dijkstra_tree(small_weighted_graph, 0)
        for v in range(small_weighted_graph.num_vertices):
            if v == 0 or np.isinf(dist[v]):
                continue
            p = int(parent[v])
            assert p >= 0
            weight = small_weighted_graph.edge_weight(p, v)
            assert np.isclose(dist[p] + weight, dist[v])

    def test_directed_dijkstra_reverse(self):
        graph = Graph(3, [(0, 1), (1, 2)], directed=True, weights=[2.0, 3.0])
        forward = dijkstra_distances(graph, 0)
        assert forward[2] == 5.0
        backward = dijkstra_distances(graph, 2, reverse=True)
        assert backward[0] == 5.0


class TestEccentricity:
    def test_path_graph(self, path_graph):
        ecc = eccentricity(path_graph)
        assert ecc[0] == 4
        assert ecc[2] == 2

    def test_selected_vertices(self, cycle_graph):
        ecc = eccentricity(cycle_graph, [0, 3])
        assert list(ecc) == [3, 3]


class TestTriangleInequalityProperty:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_triangle_inequality_on_random_graphs(self, seed):
        """Distances from BFS satisfy the triangle inequality (paper Eq. 1-2)."""
        from repro.generators import gnm_random_graph

        rng = np.random.default_rng(seed)
        graph = gnm_random_graph(30, 60, seed=seed)
        s, t, v = (int(rng.integers(0, 30)) for _ in range(3))
        d_st = bfs_distance(graph, s, t)
        d_sv = bfs_distance(graph, s, v)
        d_vt = bfs_distance(graph, v, t)
        if np.isfinite(d_sv) and np.isfinite(d_vt):
            assert d_st <= d_sv + d_vt
        if np.isfinite(d_st) and np.isfinite(d_sv) and np.isfinite(d_vt):
            assert d_st >= abs(d_sv - d_vt)

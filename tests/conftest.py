"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.baselines.apsp import APSPOracle
from repro.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    holme_kim_graph,
    watts_strogatz_graph,
)
from repro.graph.csr import Graph


@pytest.fixture
def path_graph() -> Graph:
    """A simple path 0 - 1 - 2 - 3 - 4."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star_graph() -> Graph:
    """A star with centre 0 and leaves 1..5."""
    return Graph(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def cycle_graph() -> Graph:
    """A 6-cycle."""
    return Graph(6, [(i, (i + 1) % 6) for i in range(6)])


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two components: a triangle {0,1,2} and an edge {3,4}; vertex 5 isolated."""
    return Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4)])


@pytest.fixture
def paper_example_graph() -> Graph:
    """A 12-vertex graph shaped like the paper's Figure 1 example.

    Not an exact copy of the figure (edge lists are not given in the text),
    but the same flavour: two dense clusters joined through central vertices.
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 5), (2, 6), (3, 4),
        (4, 5), (5, 6), (6, 7), (7, 8), (7, 9), (8, 9), (8, 10), (9, 11),
        (10, 11), (0, 7),
    ]
    return Graph(12, edges)


@pytest.fixture
def small_social_graph() -> Graph:
    """A 200-vertex scale-free graph used across integration tests."""
    return barabasi_albert_graph(200, 3, seed=42)


@pytest.fixture
def medium_social_graph() -> Graph:
    """A 400-vertex clustered scale-free graph."""
    return holme_kim_graph(400, 3, triad_probability=0.3, seed=7)


@pytest.fixture
def small_weighted_graph() -> Graph:
    """A small weighted grid (road-like) graph."""
    return grid_graph(7, 7, weighted=True, diagonal_probability=0.2, seed=11)


def random_test_graphs(count: int = 5, *, seed: int = 0) -> List[Graph]:
    """A deterministic batch of structurally diverse small graphs."""
    graphs = []
    for i in range(count):
        kind = i % 4
        if kind == 0:
            graphs.append(barabasi_albert_graph(120 + 20 * i, 2, seed=seed + i))
        elif kind == 1:
            graphs.append(erdos_renyi_graph(80 + 10 * i, 0.05, seed=seed + i))
        elif kind == 2:
            graphs.append(watts_strogatz_graph(100 + 10 * i, 4, 0.2, seed=seed + i))
        else:
            graphs.append(holme_kim_graph(110 + 10 * i, 3, seed=seed + i))
    return graphs


def exact_distances(graph: Graph) -> np.ndarray:
    """Full distance matrix computed by the APSP oracle (test ground truth)."""
    return APSPOracle().build(graph).matrix


def sample_pairs(
    graph: Graph, count: int, *, seed: int = 0
) -> List[Tuple[int, int]]:
    """Deterministic random vertex pairs for correctness spot checks."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    return [
        (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(count)
    ]

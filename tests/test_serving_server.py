"""Tests for the batching query server, admission control and wire protocol."""

from __future__ import annotations

import io
import json
import socket

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.errors import AdmissionError, ServingError, VertexError
from repro.graph.csr import Graph
from repro.serving import (
    BatchQueryEngine,
    LRUCache,
    QueryServer,
    SnapshotManager,
    serve_stdio,
    serve_tcp,
)


@pytest.fixture
def engine(small_social_graph):
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(small_social_graph)
    return BatchQueryEngine(index)


class TestQueryServer:
    def test_distance_matches_index(self, engine, small_social_graph):
        with QueryServer(engine) as server:
            for s, t in [(0, 5), (3, 7), (2, 2)]:
                assert server.distance(s, t) == engine.index.distance(s, t)

    def test_batch_submission(self, engine):
        with QueryServer(engine) as server:
            request = server.submit([0, 1, 2], [5, 6, 7])
            result = request.wait(10)
            assert np.array_equal(
                result, engine.index.distance_batch([0, 1, 2], [5, 6, 7])
            )
            assert request.done

    def test_coalesces_concurrent_requests(self, engine):
        with QueryServer(engine, batch_timeout=0.05) as server:
            requests = [server.submit([i], [7 - i]) for i in range(4)]
            for i, request in enumerate(requests):
                assert request.wait(10)[0] == engine.index.distance(i, 7 - i)
            stats = server.metrics_snapshot()
            # All four one-pair requests ran, in fewer batches than requests.
            assert stats["num_queries"] == 4
            assert stats["num_batches"] <= stats["num_requests"]

    def test_submit_requires_running_server(self, engine):
        server = QueryServer(engine)
        with pytest.raises(ServingError):
            server.submit([0], [1])

    def test_out_of_range_rejected_at_submit(self, engine):
        with QueryServer(engine) as server:
            with pytest.raises(VertexError):
                server.submit([0], [10_000])
            # The bad request did not poison the server.
            assert server.distance(0, 5) == engine.index.distance(0, 5)

    def test_admission_control_rejects_when_full(self, engine):
        server = QueryServer(engine, max_pending=2)
        server._running = True  # worker intentionally not started
        server._accepting = True
        try:
            server.submit([0], [1])
            server.submit([1], [2])
            with pytest.raises(AdmissionError):
                server.submit([2], [3])
            assert server.metrics_snapshot()["num_rejected"] == 1
        finally:
            server._running = False
            server._accepting = False

    def test_cache_integration(self, engine):
        cache = LRUCache(64)
        with QueryServer(engine, cache=cache) as server:
            first = server.distance(0, 5)
            second = server.distance(0, 5)
            third = server.distance(5, 0)  # symmetric hit
            assert first == second == third
            assert cache.stats.hits >= 2
            stats = server.metrics_snapshot()
            assert stats["cache_hit_rate"] > 0.0

    def test_metrics_snapshot_keys(self, engine):
        with QueryServer(engine, cache=LRUCache(8)) as server:
            server.distance(0, 5)
            stats = server.metrics_snapshot()
        for key in (
            "qps",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "num_queries",
            "cache_hit_rate",
            "queue_depth",
        ):
            assert key in stats

    def test_snapshot_backend_serves_hot_swapped_index(self):
        manager = SnapshotManager.from_graph(Graph(4, [(0, 1), (2, 3)]))
        with QueryServer(manager) as server:
            assert server.distance(0, 3) == float("inf")
            manager.insert_edge(1, 2)
            manager.publish()
            assert server.distance(0, 3) == 3.0
            assert server.metrics_snapshot()["snapshot_version"] == 2

    def test_cache_is_invalidated_on_hot_swap(self):
        # Regression: a cached pre-swap distance must not survive publish().
        manager = SnapshotManager.from_graph(Graph(4, [(0, 1), (2, 3)]))
        cache = LRUCache(64)
        with QueryServer(manager, cache=cache) as server:
            assert server.distance(0, 3) == float("inf")  # now cached
            manager.insert_edge(1, 2)
            manager.publish()
            assert server.distance(0, 3) == 3.0
            # Reload-style swaps invalidate too (version bump is the trigger).
            assert server.distance(0, 3) == 3.0  # cache hit on the new version
            assert cache.stats.hits >= 1


class TestWireProtocol:
    def test_stdio_session(self, engine):
        index = engine.index
        with QueryServer(engine, cache=LRUCache(16)) as server:
            in_stream = io.StringIO("0 5\n0,5\n\nSTATS\nbogus line here\n9999 0\nQUIT\n")
            out_stream = io.StringIO()
            handled = serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        expected = index.distance(0, 5)
        rendered = "inf" if expected == float("inf") else f"{expected:g}"
        assert lines[0] == f"0\t5\t{rendered}"
        assert lines[1] == lines[0]
        stats = json.loads(lines[2])
        assert stats["num_queries"] == 2.0
        assert lines[3].startswith("error: cannot parse query")
        assert lines[4].startswith("error: vertex 9999")
        assert handled == 6  # QUIT ends the session without being counted

    def test_stats_json_command_reaches_render_json(self, engine):
        """``stats json`` (any casing/spacing) answers with the JSON metrics line."""
        with QueryServer(engine, cache=LRUCache(16)) as server:
            in_stream = io.StringIO("0 5\nstats json\nSTATS  JSON\nQUIT\n")
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        for line in lines[1:]:
            stats = json.loads(line)
            assert stats["num_queries"] == 1.0
            assert "cache_hit_rate" in stats

    def test_huge_vertex_id_does_not_kill_session(self, engine):
        with QueryServer(engine) as server:
            in_stream = io.StringIO(f"0 {10**30}\n0 5\nQUIT\n")
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        assert "does not fit 64 bits" in lines[0]
        assert lines[1].startswith("0\t5\t")  # the session survived

    def test_stopped_server_replies_with_error_line(self, engine):
        server = QueryServer(engine)  # never started
        out_stream = io.StringIO()
        serve_stdio(server, io.StringIO("0 5\nQUIT\n"), out_stream)
        assert out_stream.getvalue().startswith("error: server is not accepting")

    def test_parse_pair_shared_with_cli(self):
        from repro.serving import parse_pair

        assert parse_pair("3,7") == (3, 7)
        assert parse_pair("3 7") == (3, 7)
        for bad in ("3", "3 7 9", "a b", str(10**30) + " 0"):
            with pytest.raises(ValueError):
                parse_pair(bad)

    def test_stdio_stops_at_eof(self, engine):
        with QueryServer(engine) as server:
            out_stream = io.StringIO()
            handled = serve_stdio(server, io.StringIO("0 5\n"), out_stream)
        assert handled == 1
        assert out_stream.getvalue().count("\t") == 2

    def test_tcp_round_trip(self, engine):
        with QueryServer(engine) as server:
            tcp = serve_tcp(server, "127.0.0.1", 0)
            import threading

            thread = threading.Thread(target=tcp.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = tcp.server_address[:2]
                with socket.create_connection((host, port), timeout=10) as conn:
                    conn.sendall(b"0 5\nSTATS\nQUIT\n")
                    conn.settimeout(10)
                    data = b""
                    while b"\n" not in data.partition(b"\n")[2]:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                replies = data.decode().splitlines()
                assert replies[0].startswith("0\t5\t")
                assert json.loads(replies[1])["num_queries"] >= 1
            finally:
                tcp.shutdown()
                tcp.server_close()


class TestMutationProtocol:
    def _writable_server(self):
        from repro.serving import SnapshotManager

        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        return QueryServer(SnapshotManager.from_graph(graph))

    def test_add_remove_publish_session(self):
        with self._writable_server() as server:
            in_stream = io.StringIO(
                "0 4\nremove 2 3\n0 4\npublish\n0 4\nadd 0,4\npublish\n0 4\nQUIT\n"
            )
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        assert lines[0] == "0\t4\t4"
        assert lines[1].startswith("ok remove (2, 3)")
        assert lines[2] == "0\t4\t4"      # not yet published
        assert lines[3] == "ok published version=2"
        assert lines[4] == "0\t4\tinf"
        assert lines[5].startswith("ok add (0, 4)")
        assert lines[6] == "ok published version=3"
        assert lines[7] == "0\t4\t1"

    def test_mutations_on_engine_backend_answer_error_line(self, engine):
        with QueryServer(engine) as server:
            in_stream = io.StringIO("add 0 1\npublish\n0 5\nQUIT\n")
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        assert lines[0].startswith("error: mutations require")
        assert lines[1].startswith("error: mutations require")
        assert lines[2].startswith("0\t5\t")  # the session survived

    def test_malformed_mutations_answer_error_line(self):
        with self._writable_server() as server:
            in_stream = io.StringIO(
                "add 1\nremove a b\npublish now\nadd 0 99\n0 4\nQUIT\n"
            )
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        assert lines[0].startswith("error: cannot parse mutation")
        assert lines[1].startswith("error: cannot parse mutation")
        assert lines[2].startswith("error: cannot parse mutation")
        assert lines[3].startswith("error: edge endpoints (0, 99)")
        assert lines[4] == "0\t4\t4"

    def test_cache_invalidated_by_published_removal(self):
        from repro.serving import SnapshotManager

        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        manager = SnapshotManager.from_graph(graph)
        with QueryServer(manager, cache=LRUCache(16)) as server:
            assert server.distance(0, 3) == 3.0
            assert server.distance(0, 3) == 3.0  # now cached
            server.remove_edge(1, 2)
            server.publish()
            assert server.distance(0, 3) == float("inf")

    def test_comma_form_mutations_route_to_mutation_parser(self):
        """Regression: 'add,0,2' used to fall through to the query parser in
        the live protocol even though parse_mutation (and replay files)
        accept it."""
        with self._writable_server() as server:
            in_stream = io.StringIO("remove,2,3\npublish\n2 3\nQUIT\n")
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        assert lines[0].startswith("ok remove (2, 3)")
        assert lines[1] == "ok published version=2"
        assert lines[2] == "2\t3\tinf"

    def test_parse_mutation_vocabulary(self):
        from repro.serving import parse_mutation

        assert parse_mutation("add 1 2") == ("add", (1, 2))
        assert parse_mutation("INSERT 1,2") == ("add", (1, 2))
        assert parse_mutation("remove 3 4") == ("remove", (3, 4))
        assert parse_mutation("Delete 3,4") == ("remove", (3, 4))
        assert parse_mutation("publish") == ("publish", None)
        for bad in ("", "add 1", "frobnicate 1 2", "publish 3", "add x y"):
            with pytest.raises(ValueError):
                parse_mutation(bad)


class TestReplayMutations:
    def test_replay_applies_and_auto_publishes(self):
        from repro.serving import SnapshotManager, replay_mutations

        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        with QueryServer(SnapshotManager.from_graph(graph)) as server:
            counts = replay_mutations(
                server,
                ["# comment", "", "remove 2 3", "publish", "add 0 4"],
            )
            assert counts == {"added": 1, "removed": 1, "published": 2}
            # The removed edge now routes around the inserted one: 2-1-0-4-3.
            assert server.distance(2, 3) == 4.0
            assert server.distance(0, 4) == 1.0

    def test_replay_no_trailing_publish_needed(self):
        from repro.serving import SnapshotManager, replay_mutations

        graph = Graph(3, [(0, 1)])
        with QueryServer(SnapshotManager.from_graph(graph)) as server:
            counts = replay_mutations(server, ["add 1 2", "publish"])
            assert counts["published"] == 1

    def test_replay_reports_bad_line_number(self):
        from repro.serving import SnapshotManager, replay_mutations

        graph = Graph(3, [(0, 1)])
        with QueryServer(SnapshotManager.from_graph(graph)) as server:
            with pytest.raises(ValueError, match="line 2"):
                replay_mutations(server, ["add 1 2", "nonsense"])

    def test_replay_requires_writable_backend(self, engine):
        from repro.serving import replay_mutations
        from repro.errors import ServingError

        with QueryServer(engine) as server:
            with pytest.raises(ServingError):
                replay_mutations(server, ["add 0 1"])


class TestCacheWarming:
    def test_warm_cache_populates_and_reports(self, engine):
        from repro.serving import warm_cache

        cache = LRUCache(64)
        # A skewed log: the hot pair repeats across chunks, so the replay
        # itself measures the hit rate such a workload will see.
        pairs = [(0, 5)] * 6 + [(1, 7), (2, 9)]
        stats = warm_cache(engine, cache, pairs, batch_size=2)
        assert stats["pairs"] == 8
        assert stats["cached"] == len(cache) == 3
        assert stats["hits"] == 4  # chunk one computes (0,5); later chunks hit
        assert stats["hit_rate"] == pytest.approx(0.5)
        # A served query on a warmed pair is a pure cache hit.
        hits_before = cache.stats.hits
        with QueryServer(engine, cache=cache) as server:
            assert server.distance(0, 5) == engine.index.distance(0, 5)
        assert cache.stats.hits == hits_before + 1

    def test_warm_cache_empty_log(self, engine):
        from repro.serving import warm_cache

        stats = warm_cache(engine, LRUCache(8), [])
        assert stats["pairs"] == 0
        assert stats["hit_rate"] == 0.0

    def test_warm_cache_propagates_vertex_errors(self, engine):
        from repro.errors import VertexError
        from repro.serving import warm_cache

        with pytest.raises(VertexError):
            warm_cache(engine, LRUCache(8), [(0, 10**6)])

    def test_read_pairs_file(self, tmp_path):
        from repro.serving import read_pairs_file

        path = tmp_path / "pairs.txt"
        path.write_text("# hot pairs\n0 5\n\n1,7\n")
        pairs = read_pairs_file(path)
        assert pairs.tolist() == [[0, 5], [1, 7]]

    def test_read_pairs_file_reports_line_number(self, tmp_path):
        from repro.serving import read_pairs_file

        path = tmp_path / "pairs.txt"
        path.write_text("0 5\nnot-a-pair\n")
        with pytest.raises(ValueError, match="line 2"):
            read_pairs_file(path)


class TestServerTracing:
    def test_requests_leave_stitched_traces(self, engine):
        from repro.serving import TraceRecorder

        tracer = TraceRecorder()
        with QueryServer(engine, cache=LRUCache(16), tracer=tracer) as server:
            server.distance(0, 5)
        assert tracer.num_recorded == 1
        trace = tracer.recent()[0]
        assert trace["status"] == "ok"
        assert trace["num_pairs"] == 1
        assert trace["total_ms"] > 0.0
        names = [span["name"] for span in trace["spans"]]
        for expected in ("queue", "batch", "cache_probe", "kernel", "reply"):
            assert expected in names
        kernel = next(s for s in trace["spans"] if s["name"] == "kernel")
        assert kernel["pairs"] == 1

    def test_coalesced_batch_shares_kernel_span(self, engine):
        from repro.serving import TraceRecorder

        tracer = TraceRecorder()
        with QueryServer(engine, batch_timeout=0.05, tracer=tracer) as server:
            requests = [server.submit([i], [7 - i]) for i in range(4)]
            for request in requests:
                request.wait(10)
        traces = tracer.recent()
        assert len(traces) == 4
        ids = {t["trace_id"] for t in traces}
        assert len(ids) == 4  # each request has its own trace id
        # At least one kernel span covers more pairs than its own request —
        # evidence the batch-level span was stitched into each member trace.
        kernel_pairs = [
            span["pairs"]
            for trace in traces
            for span in trace["spans"]
            if span["name"] == "kernel"
        ]
        assert max(kernel_pairs) > 1

    def test_null_tracer_records_nothing_but_serves(self, engine):
        from repro.serving import NullTraceRecorder

        tracer = NullTraceRecorder()
        with QueryServer(engine, tracer=tracer) as server:
            assert server.distance(0, 5) == engine.index.distance(0, 5)
        assert tracer.num_recorded == 0

    def test_stage_histograms_fed_from_server_path(self, engine):
        from repro.serving import NullTraceRecorder

        # Even with tracing off, the stage histograms must fill.
        with QueryServer(engine, cache=LRUCache(16), tracer=NullTraceRecorder()) as server:
            server.distance(0, 5)
            histograms = server.metrics_snapshot()["histograms"]
        assert histograms["latency_seconds"]["count"] == 1
        for stage in ("queue", "batch", "kernel", "cache_probe"):
            assert histograms[f"stage_{stage}_seconds"]["count"] == 1

    def test_traces_wire_command(self, engine):
        with QueryServer(engine) as server:
            in_stream = io.StringIO("0 5\nTRACES\ntraces\nQUIT\n")
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        for line in lines[1:]:
            payload = json.loads(line)
            assert payload["num_recorded"] >= 1
            assert payload["recent"][0]["num_pairs"] == 1
            span_names = [s["name"] for s in payload["recent"][0]["spans"]]
            assert "kernel" in span_names

    def test_structured_logger_start_stop_events(self, engine):
        from repro.serving import StructuredLogger

        stream = io.StringIO()
        server = QueryServer(engine, logger=StructuredLogger(stream, component="server"))
        with server:
            server.distance(0, 5)
        events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
        assert events[0] == "server_start"
        assert events[-1] == "server_stop"


class TestOneToManyProtocol:
    """The ``many``/``one-to-many`` wire verb and its fan-out dispatch."""

    def test_parse_one_to_many_spellings(self):
        from repro.serving.protocol import is_one_to_many, parse_one_to_many

        for line in (
            "many 0 1 2",
            "MANY 0 1 2",
            "one_to_many 0 1 2",
            "one-to-many,0,1,2",
            "  many, 0, 1, 2  ",
        ):
            assert is_one_to_many(line), line
            assert parse_one_to_many(line) == (0, (1, 2)), line
        assert not is_one_to_many("0 5")
        assert not is_one_to_many("add 0 1")

    def test_parse_one_to_many_errors(self):
        from repro.serving.protocol import parse_one_to_many

        with pytest.raises(ValueError, match="at least one target"):
            parse_one_to_many("many 0")
        with pytest.raises(ValueError, match="integers"):
            parse_one_to_many("many 0 x")

    def test_format_one_to_many_reply_matches_distance_lines(self):
        from repro.serving.protocol import (
            format_distance_line,
            format_one_to_many_reply,
        )

        reply = format_one_to_many_reply(3, [1, 2], [4.0, float("inf")])
        lines = reply.split("\n")
        assert lines[0] == format_distance_line(3, 1, 4.0)
        assert lines[1] == format_distance_line(3, 2, float("inf"))

    def test_query_one_to_many_matches_batch(self, engine):
        with QueryServer(engine) as server:
            targets = [1, 2, 3, 4]
            fanned = server.query_one_to_many(0, targets)
            batched = engine.index.distance_batch([0] * len(targets), targets)
            assert np.array_equal(fanned, batched)

    def test_query_one_to_many_all_targets_default(self, engine):
        with QueryServer(engine) as server:
            distances = server.query_one_to_many(5)
            assert distances.shape == (engine.num_vertices,)
            assert distances[5] == 0

    def test_stdio_one_to_many_session(self, engine):
        index = engine.index
        with QueryServer(engine) as server:
            in_stream = io.StringIO(
                "many 0 1 2\none-to-many,0,3\nmany 0\nmany 0 99999\nQUIT\n"
            )
            out_stream = io.StringIO()
            serve_stdio(server, in_stream, out_stream)
        lines = out_stream.getvalue().splitlines()
        # First verb fans out to two reply lines, one per target.
        for line, t in zip(lines[:2], (1, 2)):
            expected = index.distance(0, t)
            rendered = "inf" if expected == float("inf") else f"{expected:g}"
            assert line == f"0\t{t}\t{rendered}"
        assert lines[2].startswith("0\t3\t")
        assert lines[3].startswith("error: cannot parse query")
        assert lines[4].startswith("error: vertex 99999")

    def test_one_to_many_counts_in_verb_metrics(self, engine):
        with QueryServer(engine) as server:
            server.query_one_to_many(0, [1, 2, 3])
            server.distance(0, 5)
            stats = server.metrics_snapshot()
        assert stats["verbs"] == {"one_to_many": 3, "pair": 1}
        kernel_ops = stats["kernel_ops"]
        (kernel,) = kernel_ops
        assert kernel_ops[kernel]["query_one_to_many"] == 3
        assert kernel_ops[kernel]["query_pairs"] == 1

    def test_one_to_many_requires_accepting_server(self, engine):
        server = QueryServer(engine)
        with pytest.raises(ServingError):
            server.query_one_to_many(0, [1])

    def test_one_to_many_admission_control(self, engine):
        """Fan-outs share the max_pending budget instead of bypassing it."""
        server = QueryServer(engine, max_pending=1)
        server._running = True  # worker intentionally not started
        server._accepting = True
        try:
            server.submit([0], [1])  # saturates the pending budget
            with pytest.raises(AdmissionError):
                server.query_one_to_many(0, [1, 2, 3])
            assert server.metrics_snapshot()["num_rejected"] == 1
        finally:
            server._fail_stragglers()
            server._running = False
            server._accepting = False

    def test_one_to_many_admitted_below_limit(self, engine):
        with QueryServer(engine, max_pending=1) as server:
            distances = server.query_one_to_many(0, [1, 2])
            assert distances.shape == (2,)
            assert server._fanout_pending == 0
            assert server.metrics_snapshot()["num_rejected"] == 0

"""Tests for the serving metrics: latency window, percentiles, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.serving import LatencyWindow, ServerMetrics
from repro.serving.cache import CacheStats


class TestLatencyWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyWindow(0)

    def test_empty_percentiles_are_zero(self):
        window = LatencyWindow(8)
        assert window.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert len(window) == 0

    def test_ring_overwrites_oldest(self):
        window = LatencyWindow(4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.record(value)
        assert len(window) == 4
        assert sorted(window.values()) == [3.0, 4.0, 5.0, 6.0]

    def test_percentiles_in_milliseconds(self):
        window = LatencyWindow(16)
        for value in (0.001, 0.002, 0.003):
            window.record(value)
        points = window.percentiles()
        assert points["p50"] == pytest.approx(2.0)
        assert points["p95"] <= 3.0


class TestServerMetrics:
    def test_observe_and_snapshot(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=10, num_requests=3, seconds=0.004)
        metrics.observe_batch(num_queries=6, num_requests=1, seconds=0.002)
        metrics.observe_rejection()
        stats = metrics.snapshot()
        assert stats["num_queries"] == 16
        assert stats["num_batches"] == 2
        assert stats["num_requests"] == 4
        assert stats["num_rejected"] == 1
        assert stats["average_batch_size"] == 8.0
        assert stats["qps"] > 0.0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0.0
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_request_latencies_feed_percentiles(self):
        metrics = ServerMetrics()
        # Client-observed latencies dominate the batch compute time.
        metrics.observe_batch(
            num_queries=3,
            num_requests=3,
            seconds=0.001,
            request_latencies=[0.010, 0.020, 0.030],
        )
        stats = metrics.snapshot()
        assert stats["latency_p50_ms"] == pytest.approx(20.0)
        assert stats["latency_p99_ms"] == pytest.approx(30.0, rel=0.05)
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_snapshot_with_cache_and_version(self):
        metrics = ServerMetrics()
        cache_stats = CacheStats(hits=3, misses=1)
        stats = metrics.snapshot(
            cache_stats=cache_stats, snapshot_version=4, queue_depth=2
        )
        assert stats["cache_hit_rate"] == 0.75
        assert stats["snapshot_version"] == 4
        assert stats["queue_depth"] == 2

    def test_render_outputs(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=1, num_requests=1, seconds=0.001)
        text = metrics.render()
        assert "qps" in text and "latency_p50_ms" in text
        parsed = json.loads(metrics.render_json())
        assert parsed["num_queries"] == 1

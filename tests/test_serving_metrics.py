"""Tests for the serving metrics: latency window, percentiles, histograms."""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    Histogram,
    LatencyWindow,
    ServerMetrics,
    index_health_stats,
    render_prometheus_text,
    validate_prometheus_exposition,
)
from repro.serving.cache import CacheStats
from repro.serving.metrics import (
    PROMETHEUS_COUNTERS,
    STAGE_NAMES,
    _prometheus_number,
)


def _strip_histogram_suffix(name: str) -> str:
    """Reduce a histogram sample name to the metric name TYPE announces."""
    base = name.split("{", 1)[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return base


class TestLatencyWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyWindow(0)

    def test_empty_percentiles_are_zero(self):
        window = LatencyWindow(8)
        assert window.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert len(window) == 0

    def test_ring_overwrites_oldest(self):
        window = LatencyWindow(4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.record(value)
        assert len(window) == 4
        assert sorted(window.values()) == [3.0, 4.0, 5.0, 6.0]

    def test_percentiles_in_milliseconds(self):
        window = LatencyWindow(16)
        for value in (0.001, 0.002, 0.003):
            window.record(value)
        points = window.percentiles()
        assert points["p50"] == pytest.approx(2.0)
        assert points["p95"] <= 3.0


class TestServerMetrics:
    def test_observe_and_snapshot(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=10, num_requests=3, seconds=0.004)
        metrics.observe_batch(num_queries=6, num_requests=1, seconds=0.002)
        metrics.observe_rejection()
        stats = metrics.snapshot()
        assert stats["num_queries"] == 16
        assert stats["num_batches"] == 2
        assert stats["num_requests"] == 4
        assert stats["num_rejected"] == 1
        assert stats["average_batch_size"] == 8.0
        assert stats["qps"] > 0.0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0.0
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_request_latencies_feed_percentiles(self):
        metrics = ServerMetrics()
        # Client-observed latencies dominate the batch compute time.
        metrics.observe_batch(
            num_queries=3,
            num_requests=3,
            seconds=0.001,
            request_latencies=[0.010, 0.020, 0.030],
        )
        stats = metrics.snapshot()
        assert stats["latency_p50_ms"] == pytest.approx(20.0)
        assert stats["latency_p99_ms"] == pytest.approx(30.0, rel=0.05)
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_snapshot_with_cache_and_version(self):
        metrics = ServerMetrics()
        cache_stats = CacheStats(hits=3, misses=1)
        stats = metrics.snapshot(
            cache_stats=cache_stats, snapshot_version=4, queue_depth=2
        )
        assert stats["cache_hit_rate"] == 0.75
        assert stats["snapshot_version"] == 4
        assert stats["queue_depth"] == 2

    def test_render_outputs(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=1, num_requests=1, seconds=0.001)
        text = metrics.render()
        assert "qps" in text and "latency_p50_ms" in text
        parsed = json.loads(metrics.render_json())
        assert parsed["num_queries"] == 1

    def test_worker_respawns_counted(self):
        metrics = ServerMetrics()
        assert metrics.snapshot()["num_worker_respawns"] == 0
        metrics.observe_worker_respawn()
        metrics.observe_worker_respawn()
        assert metrics.snapshot()["num_worker_respawns"] == 2


class TestPrometheusRendering:
    def test_number_formatting(self):
        assert _prometheus_number(3) == "3"
        assert _prometheus_number(2.0) == "2"
        assert _prometheus_number(0.5) == "0.5"
        assert _prometheus_number(float("inf")) == "+Inf"
        assert _prometheus_number(float("-inf")) == "-Inf"
        assert _prometheus_number(float("nan")) == "NaN"

    def test_exposition_shape_and_types(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=5, num_requests=2, seconds=0.002)
        metrics.observe_rejection()
        body = metrics.render_prometheus(
            cache_stats=CacheStats(hits=3, misses=1), snapshot_version=7
        )
        assert body.endswith("\n")
        lines = body.splitlines()
        samples = {}
        types = {}
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                types[name] = kind
            elif line.startswith("# HELP "):
                continue
            else:
                name, _, value = line.partition(" ")
                samples[name] = float(value)
        # Every sample is announced with HELP/TYPE and parses as a float;
        # histogram samples (_bucket/_sum/_count) are announced under the
        # base metric name, per the exposition format.
        for name in samples:
            base = name.split("{", 1)[0]
            assert base in types or _strip_histogram_suffix(name) in types
        assert samples["repro_pll_num_queries"] == 5.0
        assert samples["repro_pll_num_rejected"] == 1.0
        assert samples["repro_pll_cache_hit_rate"] == 0.75
        assert samples["repro_pll_snapshot_version"] == 7.0
        assert types["repro_pll_num_queries"] == "counter"
        assert types["repro_pll_qps"] == "gauge"
        assert types["repro_pll_latency_seconds"] == "histogram"

    def test_workers_become_labelled_series(self):
        metrics = ServerMetrics()
        metrics.observe_shard(1234, num_queries=10, seconds=0.001)
        metrics.observe_shard(5678, num_queries=4, seconds=0.002)
        body = metrics.render_prometheus()
        assert 'repro_pll_worker_queries{worker="1234"} 10' in body
        assert 'repro_pll_worker_queries{worker="5678"} 4' in body
        # busy_seconds only accumulates, so it must be typed counter (PromQL
        # rate() refuses gauges).
        assert "# TYPE repro_pll_worker_busy_seconds counter" in body
        assert "# TYPE repro_pll_worker_queries counter" in body

    def test_non_numeric_values_are_skipped(self):
        body = render_prometheus_text({"name": "server-1", "num_queries": 2})
        assert "server-1" not in body
        assert "repro_pll_num_queries 2" in body

    def test_counters_declared_counter(self):
        for key in ("num_queries", "num_errors", "num_worker_respawns"):
            assert key in PROMETHEUS_COUNTERS

    def test_generation_info_labelled_gauge(self):
        body = render_prometheus_text(
            {"generation_name": "gen-3f2a", "generation_bytes": 4096}
        )
        assert 'repro_pll_generation_info{name="gen-3f2a"} 1' in body
        assert "repro_pll_generation_bytes 4096" in body

    def test_full_body_passes_exposition_grammar(self):
        metrics = ServerMetrics()
        metrics.observe_batch(
            num_queries=8,
            num_requests=4,
            seconds=0.002,
            request_latencies=[0.001, 0.003, 0.02, 1.7],
        )
        metrics.observe_stages(
            {"queue": [0.0001, 0.0002], "kernel": [0.002], "cache_probe": [0.00005]}
        )
        metrics.observe_shard(4321, num_queries=8, seconds=0.002)
        body = metrics.render_prometheus(
            cache_stats=CacheStats(hits=1, misses=3), snapshot_version=2
        )
        samples = validate_prometheus_exposition(body)
        assert samples["repro_pll_num_queries"] == 8.0
        assert samples["repro_pll_latency_seconds_count"] == 4.0


class TestHistogram:
    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([0.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([-0.5, 1.0])

    def test_bounds_are_sorted(self):
        histogram = Histogram([1.0, 0.1, 0.5])
        histogram.observe(0.3)
        snap = histogram.snapshot()
        assert [b for b, _ in snap["buckets"]] == [0.1, 0.5, 1.0]
        assert [c for _, c in snap["buckets"]] == [0, 1, 1]

    def test_cumulative_buckets_monotone_and_inf_equals_count(self):
        histogram = Histogram()
        values = [0.00005, 0.0004, 0.0004, 0.007, 0.3, 99.0]
        histogram.observe_many(values)
        snap = histogram.snapshot()
        cumulative = [c for _, c in snap["buckets"]]
        assert cumulative == sorted(cumulative)
        # 99.0 overflows every finite bucket: the last finite cumulative is
        # one short of count, and the implicit +Inf bucket equals count.
        assert cumulative[-1] == len(values) - 1
        assert snap["count"] == len(values)
        assert snap["sum"] == pytest.approx(sum(values))

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram([0.001, 0.01])
        histogram.observe(0.001)  # le="0.001" is inclusive
        snap = histogram.snapshot()
        assert snap["buckets"][0][1] == 1

    def test_exposition_bucket_series(self):
        metrics = ServerMetrics(histogram_buckets=(0.001, 0.01, 0.1))
        metrics.observe_batch(
            num_queries=3,
            num_requests=3,
            seconds=0.001,
            request_latencies=[0.0005, 0.05, 2.0],
        )
        body = metrics.render_prometheus()
        assert 'repro_pll_latency_seconds_bucket{le="0.001"} 1' in body
        assert 'repro_pll_latency_seconds_bucket{le="0.1"} 2' in body
        assert 'repro_pll_latency_seconds_bucket{le="+Inf"} 3' in body
        assert "repro_pll_latency_seconds_count 3" in body
        assert "repro_pll_latency_seconds_sum 2.0505" in body

    def test_stage_histograms_present_and_fed(self):
        metrics = ServerMetrics()
        metrics.observe_stages({stage: [0.001] for stage in STAGE_NAMES})
        metrics.observe_stages({"unknown_stage": [1.0]})  # silently ignored
        histograms = metrics.snapshot()["histograms"]
        for stage in STAGE_NAMES:
            assert histograms[f"stage_{stage}_seconds"]["count"] == 1
        body = metrics.render_prometheus()
        for stage in STAGE_NAMES:
            assert f"# TYPE repro_pll_stage_{stage}_seconds histogram" in body

    def test_histograms_disabled(self):
        metrics = ServerMetrics(histogram_buckets=None)
        assert not metrics.has_histograms
        metrics.observe_batch(num_queries=1, num_requests=1, seconds=0.001)
        metrics.observe_stages({"queue": [0.001]})
        assert "histograms" not in metrics.snapshot()
        assert "_bucket" not in metrics.render_prometheus()


class TestRenderFormatting:
    def test_num_queries_property(self):
        metrics = ServerMetrics()
        assert metrics.num_queries == 0
        metrics.observe_batch(num_queries=7, num_requests=2, seconds=0.001)
        assert metrics.num_queries == 7

    def test_render_workers_aligned_table(self):
        metrics = ServerMetrics()
        metrics.observe_shard(1234, num_queries=10, seconds=0.5)
        metrics.observe_shard(98765, num_queries=4, seconds=0.25)
        text = metrics.render()
        assert "{" not in text  # no raw dict repr
        lines = text.splitlines()
        header_idx = lines.index("  workers") + 1
        header = lines[header_idx]
        assert header.split() == ["worker", "shards", "queries", "busy_s"]
        rows = lines[header_idx + 1 : header_idx + 3]
        assert rows[0].split() == ["1234", "1", "10", "0.5000"]
        assert rows[1].split() == ["98765", "1", "4", "0.2500"]
        # Columns line up: every value ends at its header's column.
        for row in rows:
            assert len(row) == len(header)

    def test_render_histograms_summarised(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=1, num_requests=1, seconds=0.001)
        text = metrics.render()
        assert "  histograms" in text
        assert "latency_seconds" in text
        assert "count=1" in text
        assert "buckets" not in text  # summary line, not a bucket dump


class TestIndexHealthStats:
    def test_none_engine_reports_nothing(self):
        assert index_health_stats(None) == {}

    def test_duck_typed_engine(self):
        class FakeLabels:
            def total_entries(self):
                return 42

        class FakeBitParallel:
            num_roots = 3

        class FakeIndex:
            label_set = FakeLabels()
            bit_parallel_labels = FakeBitParallel()

        class FakeEngine:
            index = FakeIndex()

        stats = index_health_stats(FakeEngine())
        assert stats == {"index_label_entries": 42, "index_bit_parallel_roots": 3}


class TestProcessResourceGauges:
    def test_snapshot_includes_resource_gauges(self):
        stats = ServerMetrics().snapshot()
        assert stats["process_rss_bytes"] > 0
        assert stats["process_open_fds"] > 0
        assert stats["gc_collections_total"] >= 0

    def test_resource_gauges_render_and_validate(self):
        body = ServerMetrics().render_prometheus()
        samples = validate_prometheus_exposition(body)
        assert samples["repro_pll_process_rss_bytes"] > 0
        assert samples["repro_pll_process_open_fds"] > 0

    def test_gc_monitor_adds_pause_series(self):
        import gc

        from repro.obs.resources import enable_gc_monitor

        enable_gc_monitor()
        gc.collect()
        stats = ServerMetrics().snapshot()
        assert stats["gc_pauses_total"] >= 1
        assert stats["gc_pause_seconds_total"] >= 0.0

    def test_gc_callback_cannot_deadlock_against_lock_holders(self):
        """Regression: a collection fired while the monitor lock is held.

        Allocations inside install()/stats() can trigger a GC whose callback
        runs synchronously on the same thread; the callback must therefore
        never acquire that lock, or the thread deadlocks against itself.
        Simulated here by collecting with the lock explicitly held.
        """
        import gc

        from repro.obs.resources import GcPauseMonitor

        monitor = GcPauseMonitor()
        monitor.install()
        try:
            before = monitor.stats()["gc_pauses_total"]
            with monitor._lock:
                gc.collect()  # deadlocks here if the callback takes the lock
            assert monitor.stats()["gc_pauses_total"] >= before + 1
        finally:
            monitor.uninstall()


class TestVerbAndKernelOpCounters:
    def test_observe_verb_accumulates_in_snapshot(self):
        metrics = ServerMetrics()
        metrics.observe_verb("pair", 4)
        metrics.observe_verb("one_to_many", 3)
        metrics.observe_verb("pair", 1)
        assert metrics.snapshot()["verbs"] == {"pair": 5, "one_to_many": 3}

    def test_observe_kernel_op_nested_snapshot(self):
        metrics = ServerMetrics()
        metrics.observe_kernel_op("narrow", "query_pairs", 8)
        metrics.observe_kernel_op("narrow", "query_one_to_many", 2)
        metrics.observe_kernel_op("numba", "query_pairs", 1)
        assert metrics.snapshot()["kernel_ops"] == {
            "narrow": {"query_pairs": 8, "query_one_to_many": 2},
            "numba": {"query_pairs": 1},
        }

    def test_counters_absent_until_first_observation(self):
        stats = ServerMetrics().snapshot()
        assert "verbs" not in stats
        assert "kernel_ops" not in stats

    def test_labelled_exposition_series(self):
        metrics = ServerMetrics()
        metrics.observe_verb("one_to_many", 3)
        metrics.observe_verb("pair", 7)
        metrics.observe_kernel_op("narrow", "query_one_to_many", 3)
        body = metrics.render_prometheus()
        validate_prometheus_exposition(body)
        assert 'repro_pll_verb_queries_total{verb="one_to_many"} 3' in body
        assert 'repro_pll_verb_queries_total{verb="pair"} 7' in body
        assert (
            'repro_pll_kernel_op_queries_total{kernel="narrow",op="query_one_to_many"} 3'
            in body
        )

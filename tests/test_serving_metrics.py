"""Tests for the serving metrics: latency window, percentiles, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.serving import LatencyWindow, ServerMetrics, render_prometheus_text
from repro.serving.cache import CacheStats
from repro.serving.metrics import PROMETHEUS_COUNTERS, _prometheus_number


class TestLatencyWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyWindow(0)

    def test_empty_percentiles_are_zero(self):
        window = LatencyWindow(8)
        assert window.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert len(window) == 0

    def test_ring_overwrites_oldest(self):
        window = LatencyWindow(4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.record(value)
        assert len(window) == 4
        assert sorted(window.values()) == [3.0, 4.0, 5.0, 6.0]

    def test_percentiles_in_milliseconds(self):
        window = LatencyWindow(16)
        for value in (0.001, 0.002, 0.003):
            window.record(value)
        points = window.percentiles()
        assert points["p50"] == pytest.approx(2.0)
        assert points["p95"] <= 3.0


class TestServerMetrics:
    def test_observe_and_snapshot(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=10, num_requests=3, seconds=0.004)
        metrics.observe_batch(num_queries=6, num_requests=1, seconds=0.002)
        metrics.observe_rejection()
        stats = metrics.snapshot()
        assert stats["num_queries"] == 16
        assert stats["num_batches"] == 2
        assert stats["num_requests"] == 4
        assert stats["num_rejected"] == 1
        assert stats["average_batch_size"] == 8.0
        assert stats["qps"] > 0.0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0.0
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_request_latencies_feed_percentiles(self):
        metrics = ServerMetrics()
        # Client-observed latencies dominate the batch compute time.
        metrics.observe_batch(
            num_queries=3,
            num_requests=3,
            seconds=0.001,
            request_latencies=[0.010, 0.020, 0.030],
        )
        stats = metrics.snapshot()
        assert stats["latency_p50_ms"] == pytest.approx(20.0)
        assert stats["latency_p99_ms"] == pytest.approx(30.0, rel=0.05)
        assert 0.0 <= stats["busy_fraction"] <= 1.0

    def test_snapshot_with_cache_and_version(self):
        metrics = ServerMetrics()
        cache_stats = CacheStats(hits=3, misses=1)
        stats = metrics.snapshot(
            cache_stats=cache_stats, snapshot_version=4, queue_depth=2
        )
        assert stats["cache_hit_rate"] == 0.75
        assert stats["snapshot_version"] == 4
        assert stats["queue_depth"] == 2

    def test_render_outputs(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=1, num_requests=1, seconds=0.001)
        text = metrics.render()
        assert "qps" in text and "latency_p50_ms" in text
        parsed = json.loads(metrics.render_json())
        assert parsed["num_queries"] == 1

    def test_worker_respawns_counted(self):
        metrics = ServerMetrics()
        assert metrics.snapshot()["num_worker_respawns"] == 0
        metrics.observe_worker_respawn()
        metrics.observe_worker_respawn()
        assert metrics.snapshot()["num_worker_respawns"] == 2


class TestPrometheusRendering:
    def test_number_formatting(self):
        assert _prometheus_number(3) == "3"
        assert _prometheus_number(2.0) == "2"
        assert _prometheus_number(0.5) == "0.5"
        assert _prometheus_number(float("inf")) == "+Inf"
        assert _prometheus_number(float("-inf")) == "-Inf"
        assert _prometheus_number(float("nan")) == "NaN"

    def test_exposition_shape_and_types(self):
        metrics = ServerMetrics()
        metrics.observe_batch(num_queries=5, num_requests=2, seconds=0.002)
        metrics.observe_rejection()
        body = metrics.render_prometheus(
            cache_stats=CacheStats(hits=3, misses=1), snapshot_version=7
        )
        assert body.endswith("\n")
        lines = body.splitlines()
        samples = {}
        types = {}
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                types[name] = kind
            elif line.startswith("# HELP "):
                continue
            else:
                name, _, value = line.partition(" ")
                samples[name] = float(value)
        # Every sample is announced with HELP/TYPE and parses as a float.
        for name in samples:
            assert name.split("{", 1)[0] in types
        assert samples["repro_pll_num_queries"] == 5.0
        assert samples["repro_pll_num_rejected"] == 1.0
        assert samples["repro_pll_cache_hit_rate"] == 0.75
        assert samples["repro_pll_snapshot_version"] == 7.0
        assert types["repro_pll_num_queries"] == "counter"
        assert types["repro_pll_qps"] == "gauge"

    def test_workers_become_labelled_series(self):
        metrics = ServerMetrics()
        metrics.observe_shard(1234, num_queries=10, seconds=0.001)
        metrics.observe_shard(5678, num_queries=4, seconds=0.002)
        body = metrics.render_prometheus()
        assert 'repro_pll_worker_queries{worker="1234"} 10' in body
        assert 'repro_pll_worker_queries{worker="5678"} 4' in body
        assert "# TYPE repro_pll_worker_busy_seconds gauge" in body

    def test_non_numeric_values_are_skipped(self):
        body = render_prometheus_text({"name": "server-1", "num_queries": 2})
        assert "server-1" not in body
        assert "repro_pll_num_queries 2" in body

    def test_counters_declared_counter(self):
        for key in ("num_queries", "num_errors", "num_worker_respawns"):
            assert key in PROMETHEUS_COUNTERS

"""Unit tests for network statistics (the Figure 2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.statistics import (
    degree_ccdf,
    degree_histogram,
    distance_distribution,
    sample_pair_distances,
    summarize_graph,
)


class TestDegreeHistogram:
    def test_star_graph(self, star_graph):
        histogram = degree_histogram(star_graph)
        assert histogram[1] == 5
        assert histogram[5] == 1

    def test_empty_graph(self):
        histogram = degree_histogram(Graph(0, []))
        assert histogram.shape[0] == 1

    def test_histogram_sums_to_n(self, small_social_graph):
        histogram = degree_histogram(small_social_graph)
        assert histogram.sum() == small_social_graph.num_vertices


class TestDegreeCCDF:
    def test_monotone_decreasing(self, small_social_graph):
        degrees, counts = degree_ccdf(small_social_graph)
        assert np.all(np.diff(degrees) > 0)
        assert np.all(np.diff(counts) <= 0)

    def test_first_count_is_num_vertices_with_positive_degree(self, star_graph):
        degrees, counts = degree_ccdf(star_graph)
        assert degrees[0] == 1
        assert counts[0] == 6

    def test_empty_graph(self):
        degrees, counts = degree_ccdf(Graph(3, []))
        # All vertices have degree zero, which the CCDF reports at degree 0.
        assert counts[0] == 3

    def test_powerlaw_graph_is_heavy_tailed(self, medium_social_graph):
        degrees, counts = degree_ccdf(medium_social_graph)
        # A scale-free graph has a maximum degree far above the average.
        average = medium_social_graph.degrees().mean()
        assert degrees[-1] > 4 * average


class TestSamplePairDistances:
    def test_sample_count(self, small_social_graph):
        samples = sample_pair_distances(small_social_graph, 200, seed=1)
        assert samples.shape[0] == 200

    def test_deterministic_given_seed(self, small_social_graph):
        a = sample_pair_distances(small_social_graph, 100, seed=5)
        b = sample_pair_distances(small_social_graph, 100, seed=5)
        assert np.array_equal(a, b)

    def test_connected_only_filters_inf(self, disconnected_graph):
        samples = sample_pair_distances(
            disconnected_graph, 50, seed=0, connected_only=True
        )
        assert np.isfinite(samples).all()

    def test_includes_inf_for_disconnected(self, disconnected_graph):
        samples = sample_pair_distances(disconnected_graph, 300, seed=0)
        assert np.isinf(samples).any()

    def test_requires_two_vertices(self):
        with pytest.raises(GraphError):
            sample_pair_distances(Graph(1, []), 10)

    def test_requires_positive_pairs(self, path_graph):
        with pytest.raises(GraphError):
            sample_pair_distances(path_graph, 0)


class TestDistanceDistribution:
    def test_fractions_sum_to_one(self, small_social_graph):
        _, fractions = distance_distribution(small_social_graph, 500, seed=2)
        assert np.isclose(fractions.sum(), 1.0)

    def test_small_world_average(self, medium_social_graph):
        distances, fractions = distance_distribution(medium_social_graph, 500, seed=2)
        average = float((distances * fractions).sum())
        # Scale-free graphs of this size have tiny average distance.
        assert average < 8


class TestSummarizeGraph:
    def test_summary_fields(self, small_social_graph):
        summary = summarize_graph(small_social_graph, num_pairs=300, seed=3)
        assert summary.num_vertices == small_social_graph.num_vertices
        assert summary.num_edges == small_social_graph.num_edges
        assert summary.average_degree > 0
        assert summary.max_degree >= summary.average_degree
        assert summary.average_distance > 0
        assert summary.effective_diameter >= summary.average_distance - 1
        assert 0 < summary.fraction_reachable <= 1.0

    def test_as_dict_round_trip(self, small_social_graph):
        summary = summarize_graph(small_social_graph, num_pairs=100)
        record = summary.as_dict()
        assert record["num_vertices"] == summary.num_vertices
        assert "average_distance" in record

"""Tests for the measurement harness."""

from __future__ import annotations

import pytest

from repro.baselines.hub_labeling import HierarchicalHubLabeling
from repro.baselines.online import OnlineBFSOracle
from repro.core.index import PrunedLandmarkLabeling
from repro.experiments.harness import MethodSpec, measure_method, run_comparison
from repro.experiments.workloads import random_pairs


class TestMeasureMethod:
    def test_basic_measurement(self, small_social_graph):
        pairs = random_pairs(small_social_graph.num_vertices, 50, seed=0)
        measurement = measure_method(
            "PLL",
            lambda: PrunedLandmarkLabeling(num_bit_parallel_roots=2),
            small_social_graph,
            pairs,
            dataset="unit-test",
        )
        assert measurement.finished
        assert measurement.method == "PLL"
        assert measurement.dataset == "unit-test"
        assert measurement.indexing_seconds > 0
        assert measurement.query_seconds > 0
        assert measurement.index_bytes > 0
        assert measurement.average_label_size >= 1.0
        assert measurement.bit_parallel_roots == 2

    def test_dnf_reported_not_raised(self, small_social_graph):
        measurement = measure_method(
            "HHL",
            lambda: HierarchicalHubLabeling(max_vertices=10),
            small_social_graph,
            random_pairs(small_social_graph.num_vertices, 10, seed=0),
        )
        assert not measurement.finished
        assert "DNF" in measurement.note
        assert measurement.indexing_seconds == 0.0

    def test_query_cap(self, small_social_graph):
        pairs = random_pairs(small_social_graph.num_vertices, 100, seed=1)
        measurement = measure_method(
            "BFS",
            OnlineBFSOracle,
            small_social_graph,
            pairs,
            max_query_pairs=5,
            collect_results=True,
        )
        assert measurement.query_results.shape[0] == 5

    def test_as_dict(self, small_social_graph):
        pairs = random_pairs(small_social_graph.num_vertices, 10, seed=2)
        record = measure_method(
            "PLL", PrunedLandmarkLabeling, small_social_graph, pairs
        ).as_dict()
        assert record["method"] == "PLL"
        assert record["finished"] is True


class TestRunComparison:
    def test_methods_agree(self, small_social_graph):
        pairs = random_pairs(small_social_graph.num_vertices, 40, seed=3)
        methods = [
            MethodSpec("PLL", PrunedLandmarkLabeling),
            MethodSpec("BFS", OnlineBFSOracle, max_query_pairs=20),
        ]
        measurements = run_comparison(
            small_social_graph, methods, pairs, dataset="agree", validate=True
        )
        assert len(measurements) == 2
        assert all(m.finished for m in measurements)

    def test_validation_catches_disagreement(self, small_social_graph):
        class BrokenOracle:
            def build(self, graph):
                return self

            def distance(self, s, t):
                return 1.0

        pairs = random_pairs(small_social_graph.num_vertices, 30, seed=4)
        methods = [
            MethodSpec("PLL", PrunedLandmarkLabeling),
            MethodSpec("Broken", BrokenOracle),
        ]
        with pytest.raises(AssertionError):
            run_comparison(small_social_graph, methods, pairs, validate=True)

    def test_validation_can_be_disabled(self, small_social_graph):
        class BrokenOracle:
            def build(self, graph):
                return self

            def distance(self, s, t):
                return 1.0

        pairs = random_pairs(small_social_graph.num_vertices, 10, seed=5)
        methods = [
            MethodSpec("PLL", PrunedLandmarkLabeling),
            MethodSpec("Broken", BrokenOracle),
        ]
        measurements = run_comparison(
            small_social_graph, methods, pairs, validate=False
        )
        assert len(measurements) == 2

"""Tests for snapshot publication and atomic hot swap under concurrent updates."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.core.index import PrunedLandmarkLabeling
from repro.core.serialization import save_index
from repro.errors import ServingError
from repro.graph.csr import Graph
from repro.serving import SnapshotManager


class TestDynamicFreeze:
    def test_freeze_matches_dynamic_distances(self, medium_social_graph):
        dynamic = DynamicPrunedLandmarkLabeling().build(medium_social_graph)
        static = dynamic.freeze()
        rng = np.random.default_rng(2)
        n = medium_social_graph.num_vertices
        for _ in range(100):
            s, t = int(rng.integers(0, n)), int(rng.integers(0, n))
            assert static.distance(s, t) == dynamic.distance(s, t)

    def test_freeze_is_isolated_from_later_inserts(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        dynamic = DynamicPrunedLandmarkLabeling().build(graph)
        frozen = dynamic.freeze()
        dynamic.insert_edge(1, 2)
        assert dynamic.distance(0, 3) == 3.0
        assert frozen.distance(0, 3) == float("inf")

    def test_graph_snapshot_reflects_inserts(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        dynamic = DynamicPrunedLandmarkLabeling().build(graph)
        dynamic.insert_edge(1, 2)
        snapshot = dynamic.graph_snapshot()
        assert snapshot.num_vertices == 4
        assert snapshot.has_edge(1, 2)
        assert snapshot.has_edge(0, 1)


class TestSnapshotManager:
    def test_initial_snapshot_matches_static_index(self, small_social_graph):
        manager = SnapshotManager.from_graph(small_social_graph)
        static = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            small_social_graph
        )
        n = small_social_graph.num_vertices
        for s in range(n):
            for t in range(n):
                assert manager.query(s, t) == static.distance(s, t)
        assert manager.version == 1

    def test_publish_after_insert_updates_readers(self):
        manager = SnapshotManager.from_graph(Graph(4, [(0, 1), (2, 3)]))
        assert manager.query(0, 3) == float("inf")
        manager.insert_edge(1, 2)
        assert manager.pending_updates == 1
        # Not yet visible: publication is explicit.
        assert manager.query(0, 3) == float("inf")
        snapshot = manager.publish()
        assert snapshot.version == 2
        assert manager.pending_updates == 0
        assert manager.query(0, 3) == 3.0

    def test_old_snapshot_stays_consistent_after_swap(self):
        manager = SnapshotManager.from_graph(Graph(4, [(0, 1), (2, 3)]))
        held = manager.current
        manager.insert_edge(1, 2)
        manager.publish()
        assert held.engine.query(0, 3) == float("inf")
        assert manager.current.engine.query(0, 3) == 3.0
        assert manager.current.version == held.version + 1

    def test_from_index_with_graph_is_writable(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        manager = SnapshotManager.from_index(index)
        assert manager.writable
        # The shadow rebuild is deferred until the first actual update.
        assert manager._shadow is None
        manager.insert_edge(0, small_social_graph.num_vertices - 1)
        assert manager._shadow is not None
        manager.publish()
        assert manager.query(0, small_social_graph.num_vertices - 1) == 1.0

    def test_reload_from_disk(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            small_social_graph
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded_index = PrunedLandmarkLabeling().build(Graph(2, [(0, 1)]))
        manager = SnapshotManager(loaded_index, source="tiny")
        snapshot = manager.reload(path)
        assert snapshot.version == 2
        assert manager.current.engine.query(0, 5) == index.distance(0, 5)

    def test_read_only_manager_rejects_updates(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        manager = SnapshotManager(index)  # no shadow passed
        assert not manager.writable
        with pytest.raises(ServingError):
            manager.insert_edge(0, 1)
        with pytest.raises(ServingError):
            manager.publish()
        # Reloading is still allowed.
        assert manager.reload(path).version == 2


class TestConcurrentHotSwap:
    def test_readers_see_consistent_distances_during_updates(self):
        """A reader thread queries while a writer inserts edges and publishes.

        The writer records the expected distance of a probe pair for every
        published version; the reader repeatedly grabs the current snapshot
        and asserts the distance it observes is exactly the one recorded for
        that snapshot's version — i.e. swaps are atomic and a snapshot never
        exposes a half-applied update.
        """
        # A path graph: inserting shortcut edges keeps shrinking d(0, n-1).
        n = 24
        graph = Graph(n, [(i, i + 1) for i in range(n - 1)])
        manager = SnapshotManager.from_graph(graph)
        probe = (0, n - 1)

        expected_by_version = {1: manager.query(*probe)}
        shortcuts = [(0, 6), (6, 12), (12, 18), (18, n - 1), (0, 12), (0, 18)]
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                snapshot = manager.current
                observed = snapshot.engine.query(*probe)
                expected = expected_by_version.get(snapshot.version)
                if expected is not None and observed != expected:
                    failures.append((snapshot.version, observed, expected))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for a, b in shortcuts:
                manager.insert_edge(a, b)
                # Record the expectation *before* readers can see the version.
                frozen_distance = None
                snapshot = manager.publish()
                frozen_distance = snapshot.engine.query(*probe)
                expected_by_version[snapshot.version] = frozen_distance
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures, f"inconsistent reads: {failures[:3]}"
        # Shortest paths only shrink under insert-only updates.
        versions = sorted(expected_by_version)
        distances = [expected_by_version[v] for v in versions]
        assert distances == sorted(distances, reverse=True)
        assert distances[-1] < distances[0]
        assert manager.version == 1 + len(shortcuts)


class TestDecrementalPublish:
    def test_publish_after_remove_updates_readers(self):
        manager = SnapshotManager.from_graph(
            Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        )
        assert manager.query(0, 4) == 4.0
        manager.remove_edge(2, 3)
        assert manager.pending_updates == 1
        # Not yet visible: publication is explicit.
        assert manager.query(0, 4) == 4.0
        snapshot = manager.publish()
        assert snapshot.version == 2
        assert "vertex labels patched" in snapshot.source
        assert manager.query(0, 4) == float("inf")
        assert manager.query(0, 2) == 2.0

    def test_mixed_stream_matches_rebuilt_index(self):
        graph = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        manager = SnapshotManager.from_graph(graph)
        manager.remove_edge(5, 0)
        manager.insert_edge(0, 3)
        manager.remove_edge(2, 3)
        manager.publish()
        final = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3)])
        truth = PrunedLandmarkLabeling().build(final)
        for s in range(6):
            for t in range(6):
                assert manager.query(s, t) == truth.distance(s, t)

    def test_remove_edges_stream_counts_pending(self):
        manager = SnapshotManager.from_graph(
            Graph(4, [(0, 1), (1, 2), (2, 3)])
        )
        manager.remove_edges([(0, 1), (2, 3)])
        assert manager.pending_updates == 2
        manager.publish()
        assert manager.pending_updates == 0
        assert manager.query(0, 1) == float("inf")

    def test_read_only_manager_rejects_removals(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        manager = SnapshotManager(index)  # no shadow
        with pytest.raises(ServingError):
            manager.remove_edge(0, 1)

    def test_diff_publish_equals_full_publish(self):
        graph = Graph(8, [(i, i + 1) for i in range(7)] + [(0, 7)])
        diff_manager = SnapshotManager.from_graph(graph)
        full_manager = SnapshotManager.from_graph(graph)
        for manager in (diff_manager, full_manager):
            manager.remove_edge(3, 4)
            manager.insert_edge(1, 6)
        diff_snapshot = diff_manager.publish(diff=True)
        full_snapshot = full_manager.publish(diff=False)
        for s in range(8):
            for t in range(8):
                assert diff_snapshot.engine.query(s, t) == full_snapshot.engine.query(s, t)

    def test_held_snapshot_unaffected_by_removal_publish(self):
        manager = SnapshotManager.from_graph(Graph(3, [(0, 1), (1, 2)]))
        held = manager.current
        manager.remove_edge(0, 1)
        manager.publish()
        assert held.engine.query(0, 2) == 2.0
        assert manager.current.engine.query(0, 2) == float("inf")

"""Unit tests for the CSR graph representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EdgeError, GraphError, VertexError
from repro.graph.csr import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0, [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert len(graph) == 0

    def test_vertices_without_edges(self):
        graph = Graph(5, [])
        assert graph.num_vertices == 5
        assert graph.num_edges == 0
        assert graph.degree(3) == 0

    def test_basic_undirected(self, path_graph):
        assert path_graph.num_vertices == 5
        assert path_graph.num_edges == 4
        assert not path_graph.directed
        assert not path_graph.weighted

    def test_neighbors_sorted(self):
        graph = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert list(graph.neighbors(0)) == [1, 2, 3]

    def test_self_loops_dropped(self):
        graph = Graph(3, [(0, 0), (0, 1), (1, 1), (1, 2)])
        assert graph.num_edges == 2
        assert not graph.has_edge(0, 0)

    def test_parallel_edges_deduplicated(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.degree(0) == 1

    def test_undirected_symmetry(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert list(graph.neighbors(1)) == [0, 2]

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(VertexError):
            Graph(3, [(0, 3)])
        with pytest.raises(VertexError):
            Graph(3, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(EdgeError):
            Graph(3, [(0, 1, 2)])

    def test_directed_graph(self):
        graph = Graph(3, [(0, 1), (1, 2)], directed=True)
        assert graph.directed
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph.out_degree(0) == 1
        assert graph.in_degree(0) == 0
        assert graph.in_degree(1) == 1

    def test_directed_in_neighbors(self):
        graph = Graph(4, [(0, 2), (1, 2), (2, 3)], directed=True)
        assert list(graph.in_neighbors(2)) == [0, 1]
        assert list(graph.neighbors(2)) == [3]

    def test_edge_count_directed(self):
        graph = Graph(3, [(0, 1), (1, 0), (1, 2)], directed=True)
        assert graph.num_edges == 3


class TestWeights:
    def test_weighted_construction(self):
        graph = Graph(3, [(0, 1), (1, 2)], weights=[2.0, 3.5])
        assert graph.weighted
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 0) == 2.0
        assert graph.edge_weight(2, 1) == 3.5

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(EdgeError):
            Graph(3, [(0, 1), (1, 2)], weights=[1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(EdgeError):
            Graph(3, [(0, 1)], weights=[-1.0])

    def test_duplicate_weighted_edge_keeps_minimum(self):
        graph = Graph(2, [(0, 1), (0, 1)], weights=[5.0, 2.0])
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 2.0

    def test_missing_edge_weight_raises(self):
        graph = Graph(3, [(0, 1)], weights=[1.0])
        with pytest.raises(EdgeError):
            graph.edge_weight(0, 2)

    def test_neighbor_weights_alignment(self):
        graph = Graph(3, [(0, 2), (0, 1)], weights=[7.0, 3.0])
        neighbors = list(graph.neighbors(0))
        weights = list(graph.neighbor_weights(0))
        assert neighbors == [1, 2]
        assert weights == [3.0, 7.0]

    def test_unweighted_neighbor_weights_are_ones(self, path_graph):
        assert list(path_graph.neighbor_weights(1)) == [1.0, 1.0]


class TestAccessors:
    def test_degrees_array(self, star_graph):
        degrees = star_graph.degrees()
        assert degrees[0] == 5
        assert all(degrees[i] == 1 for i in range(1, 6))

    def test_total_degrees_directed(self):
        graph = Graph(3, [(0, 1), (2, 1)], directed=True)
        assert list(graph.total_degrees()) == [1, 2, 1]

    def test_degree_out_of_range(self, path_graph):
        with pytest.raises(VertexError):
            path_graph.degree(99)
        with pytest.raises(IndexError):
            path_graph.neighbors(-1)

    def test_edges_iteration_undirected(self, path_graph):
        edges = sorted(path_graph.edges())
        assert edges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_edges_iteration_directed(self):
        graph = Graph(3, [(1, 0), (1, 2)], directed=True)
        assert sorted(graph.edges()) == [(1, 0), (1, 2)]

    def test_edge_array_shape(self, cycle_graph):
        array = cycle_graph.edge_array()
        assert array.shape == (6, 2)

    def test_repr_contains_counts(self, path_graph):
        text = repr(path_graph)
        assert "n=5" in text and "m=4" in text


class TestDerivedGraphs:
    def test_to_undirected(self):
        directed = Graph(3, [(0, 1), (1, 2)], directed=True)
        undirected = directed.to_undirected()
        assert not undirected.directed
        assert undirected.has_edge(1, 0)

    def test_reverse_directed(self):
        graph = Graph(3, [(0, 1), (1, 2)], directed=True)
        reverse = graph.reverse()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert not reverse.has_edge(0, 1)

    def test_reverse_undirected_is_self(self, path_graph):
        assert path_graph.reverse() is path_graph

    def test_subgraph(self, path_graph):
        sub, mapping = path_graph.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert list(mapping) == [1, 2, 3]
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_subgraph_preserves_weights(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)], weights=[1.0, 2.0, 3.0])
        sub, _ = graph.subgraph([1, 2, 3])
        assert sub.weighted
        assert sub.edge_weight(0, 1) == 2.0

    def test_subgraph_duplicate_vertices_rejected(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.subgraph([1, 1, 2])

    def test_subgraph_out_of_range_rejected(self, path_graph):
        with pytest.raises(VertexError):
            path_graph.subgraph([0, 99])

    def test_relabel_permutation(self, path_graph):
        relabelled = path_graph.relabel([4, 3, 2, 1, 0])
        assert relabelled.has_edge(4, 3)
        assert relabelled.has_edge(1, 0)
        assert relabelled.num_edges == path_graph.num_edges

    def test_relabel_requires_permutation(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.relabel([0, 0, 1, 2, 3])

    def test_structural_equality(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (1, 0)])
        c = Graph(3, [(0, 1)])
        assert a.structurally_equal(b)
        assert not a.structurally_equal(c)
        assert not a.structurally_equal("not a graph")

    def test_structural_equality_edge_order_independent(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3)]
        a = Graph(4, edges)
        b = Graph(4, list(reversed(edges)))
        assert a.structurally_equal(b)


class TestNumpyInterop:
    def test_accepts_numpy_edge_array(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        graph = Graph(3, edges)
        assert graph.num_edges == 2

    def test_indptr_consistency(self, cycle_graph):
        indptr = cycle_graph.indptr
        assert indptr[0] == 0
        assert indptr[-1] == cycle_graph.adjacency.shape[0]
        assert np.all(np.diff(indptr) == 2)

"""Tests for the dataset registry and custom dataset loaders."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    get_dataset,
    list_datasets,
    load_dataset,
    load_edge_list_dataset,
    register_custom_dataset,
)
from repro.errors import DatasetError
from repro.graph.components import is_connected
from repro.graph.io import write_edge_list


class TestRegistry:
    def test_eleven_builtin_datasets(self):
        builtin = [name for name in DATASETS if DATASETS[name].paper_vertices > 0]
        assert len(builtin) == 11

    def test_small_and_large_partition(self):
        assert len(SMALL_DATASETS) == 5
        assert len(LARGE_DATASETS) == 6
        assert set(SMALL_DATASETS).isdisjoint(LARGE_DATASETS)

    def test_list_filtering(self):
        assert set(list_datasets("small")) >= set(SMALL_DATASETS)
        assert set(list_datasets()) >= set(SMALL_DATASETS) | set(LARGE_DATASETS)
        with pytest.raises(DatasetError):
            list_datasets("medium")

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("GNUTELLA").name == "gnutella"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("facebook")

    def test_spec_metadata(self):
        spec = get_dataset("hollywood")
        assert spec.network_type == "Social"
        assert spec.size_class == "large"
        assert spec.default_bit_parallel == 64
        assert spec.paper_edges == 114_000_000

    @pytest.mark.parametrize("name", ["gnutella", "epinions", "notredame"])
    def test_load_small_datasets(self, name):
        graph = load_dataset(name)
        assert graph.num_vertices > 500
        assert graph.num_edges > graph.num_vertices / 2
        assert is_connected(graph)
        assert not graph.directed

    def test_load_is_cached_and_deterministic(self):
        a = load_dataset("gnutella")
        b = load_dataset("gnutella")
        assert a is b  # lru_cache returns the same object
        fresh = get_dataset("gnutella").load()
        assert fresh.structurally_equal(a)

    def test_power_law_degree_shape(self):
        graph = load_dataset("epinions")
        degrees = graph.degrees()
        assert degrees.max() > 8 * degrees.mean()


class TestCustomDatasets:
    def test_load_edge_list_dataset(self, tmp_path, small_social_graph):
        path = tmp_path / "custom.txt"
        write_edge_list(small_social_graph, path)
        graph = load_edge_list_dataset(path)
        assert graph.num_vertices == small_social_graph.num_vertices

    def test_register_custom_dataset(self, tmp_path, small_social_graph):
        path = tmp_path / "mini.txt"
        write_edge_list(small_social_graph, path)
        spec = register_custom_dataset("test-mini", path, network_type="Social")
        try:
            assert spec.name == "test-mini"
            assert "test-mini" in list_datasets()
            loaded = load_dataset("test-mini")
            assert loaded.num_vertices == small_social_graph.num_vertices
        finally:
            DATASETS.pop("test-mini", None)
            load_dataset.cache_clear()

    def test_register_duplicate_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            register_custom_dataset("gnutella", tmp_path / "x.txt")

    def test_register_bad_size_class(self, tmp_path):
        with pytest.raises(DatasetError):
            register_custom_dataset("newone", tmp_path / "x.txt", size_class="huge")

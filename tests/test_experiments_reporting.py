"""Tests for reporting/formatting helpers."""

from __future__ import annotations

import csv

from repro.experiments.harness import MethodMeasurement
from repro.experiments.reporting import (
    format_bytes,
    format_measurements,
    format_query_time,
    format_seconds,
    format_table,
    write_csv,
)


class TestUnits:
    def test_format_seconds(self):
        assert format_seconds(0.0000025) == "2.5 us"
        assert format_seconds(0.0042) == "4.2 ms"
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(1234) == "1,234 s"
        assert format_seconds(float("inf")) == "inf"

    def test_format_query_time(self):
        assert format_query_time(3e-6) == "3.0 us"
        assert format_query_time(0.004) == "4.00 ms"
        assert format_query_time(2.0) == "2.00 s"

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2_048) == "2.0 KB"
        assert format_bytes(3_500_000) == "3.5 MB"
        assert format_bytes(12_000_000_000) == "12.0 GB"


class TestFormatTable:
    def test_alignment_and_title(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = format_table(rows, title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_missing_values_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        with open(path, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded == [{"x": "1", "y": "a"}, {"x": "2", "y": "b"}]

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert path.read_text() == ""


class TestFormatMeasurements:
    def test_finished_and_dnf_rows(self):
        finished = MethodMeasurement(
            method="PLL",
            dataset="toy",
            num_vertices=10,
            num_edges=20,
            indexing_seconds=1.5,
            index_bytes=1_000,
            query_seconds=2e-6,
            average_label_size=12.3,
            bit_parallel_roots=16,
        )
        dnf = MethodMeasurement(
            method="HHL", dataset="toy", num_vertices=10, num_edges=20, finished=False
        )
        text = format_measurements([finished, dnf])
        assert "12.3+16" in text
        assert "DNF" in text
        assert "1.5 s" in text

"""Tests for the benchmark result schema: encoding stability, merging, IO."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Metric,
    SchemaError,
    bench_result,
    collect_fingerprint,
    read_result,
    result_filename,
    write_result,
)
from repro.obs.schema import SCHEMA_VERSION, BenchResult


class TestMetric:
    def test_value_coerced_to_float(self):
        metric = Metric("count", 7)
        assert metric.value == 7.0
        assert isinstance(metric.value, float)

    def test_samples_default_to_value(self):
        assert Metric("qps", 123.0).samples == (123.0,)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Metric("", 1.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(SchemaError):
            Metric("qps", 1.0, tolerance=-0.1)

    def test_gated_only_when_direction_set(self):
        assert Metric("qps", 1.0, higher_is_better=True).gated
        assert Metric("p99", 1.0, higher_is_better=False).gated
        assert not Metric("count", 1.0).gated


class TestBenchResult:
    def test_bench_result_accepts_mixed_specs(self):
        result = bench_result(
            "mixed",
            [
                Metric("a", 1.0, unit="s"),
                ("b", 2.0),
                ("c", 3.0, "ms"),
                {"name": "d", "value": 4.0, "higher_is_better": True},
            ],
        )
        assert [m.name for m in result.metrics] == ["a", "b", "c", "d"]
        assert result.metric("c").unit == "ms"
        assert result.metric("d").gated

    def test_duplicate_metric_names_rejected(self):
        with pytest.raises(SchemaError):
            bench_result("dup", [("a", 1.0), ("a", 2.0)])

    def test_unsafe_suite_name_rejected(self):
        with pytest.raises(SchemaError):
            bench_result("../escape", [("a", 1.0)])

    def test_fingerprint_captured(self):
        result = bench_result("fp", [("a", 1.0)], smoke=True)
        assert result.fingerprint.smoke
        assert result.fingerprint.python
        assert result.fingerprint.numpy
        assert result.fingerprint.cpu_count >= 1
        assert result.schema_version == SCHEMA_VERSION

    def test_smoke_flag_recorded_in_fingerprint(self):
        assert collect_fingerprint(smoke=True).smoke
        assert not collect_fingerprint(smoke=False).smoke


class TestEncodingStability:
    def test_roundtrip_reencode_is_byte_identical(self):
        result = bench_result(
            "stable",
            [
                Metric("qps", 1234.5, unit="q/s", higher_is_better=True,
                       samples=(1200.0, 1234.5, 1210.0)),
                Metric("p99", 8.25, unit="ms", higher_is_better=False, tolerance=0.2),
                Metric("count", 42),
            ],
            smoke=True,
        )
        encoded = result.to_json()
        decoded = BenchResult.from_json(encoded)
        assert decoded.to_json() == encoded
        assert decoded == result

    def test_json_is_pinned_sorted_and_newline_terminated(self):
        encoded = bench_result("pin", [("a", 1.0)]).to_json()
        assert encoded.endswith("\n")
        payload = json.loads(encoded)
        assert list(payload) == sorted(payload)

    def test_write_read_roundtrip(self, tmp_path):
        result = bench_result("disk", [("qps", 10.0)])
        path = write_result(result, tmp_path)
        assert path.name == result_filename("disk") == "BENCH_disk.json"
        assert read_result(path) == result

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SchemaError):
            read_result(path)

    def test_result_filename_rejects_traversal(self):
        with pytest.raises(SchemaError):
            result_filename("a/b")


class TestMergedWith:
    def _pair(self, *, hib, first, second):
        a = bench_result("m", [Metric("x", first, higher_is_better=hib)])
        b = bench_result("m", [Metric("x", second, higher_is_better=hib)])
        return a, b

    def test_higher_is_better_keeps_max(self):
        a, b = self._pair(hib=True, first=10.0, second=12.0)
        merged = a.merged_with(b)
        assert merged.metric("x").value == 12.0
        assert merged.metric("x").samples == (10.0, 12.0)

    def test_lower_is_better_keeps_min(self):
        a, b = self._pair(hib=False, first=10.0, second=12.0)
        assert a.merged_with(b).metric("x").value == 10.0

    def test_informational_takes_median(self):
        a = bench_result("m", [Metric("x", 1.0)])
        b = bench_result("m", [Metric("x", 9.0)])
        c = bench_result("m", [Metric("x", 2.0)])
        assert a.merged_with(b).merged_with(c).metric("x").value == 2.0

    def test_merge_keeps_own_fingerprint(self):
        a, b = self._pair(hib=True, first=1.0, second=2.0)
        assert a.merged_with(b).fingerprint == a.fingerprint

    def test_merge_requires_same_suite(self):
        a = bench_result("m", [("x", 1.0)])
        b = bench_result("other", [("x", 1.0)])
        with pytest.raises(SchemaError):
            a.merged_with(b)

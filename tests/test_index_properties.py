"""Property-based tests (hypothesis) for the core invariants of the index.

These are the heavy-duty correctness guarantees: on arbitrary random graphs,
for arbitrary orderings and bit-parallel settings, the pruned-landmark-
labeling oracle must agree exactly with a BFS ground truth, its labels must
keep their structural invariants, and the 2-hop query must never underestimate
a distance for any (even partially built) label set.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bitparallel import build_bit_parallel_labels
from repro.core.index import PrunedLandmarkLabeling
from repro.core.pruned import build_pruned_labels
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order
from repro.graph.traversal import UNREACHABLE, bfs_distances

# ----------------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------------


@st.composite
def random_graphs(draw, max_vertices: int = 40, max_extra_edges: int = 80):
    """Arbitrary small undirected graphs (possibly disconnected, with isolates)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=num_edges,
        )
    )
    return Graph(n, edges)


@st.composite
def graphs_with_pairs(draw, max_vertices: int = 40):
    graph = draw(random_graphs(max_vertices=max_vertices))
    n = graph.num_vertices
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return graph, pairs


def true_distance(graph: Graph, s: int, t: int) -> float:
    d = bfs_distances(graph, s)[t]
    return float("inf") if d == UNREACHABLE else float(d)


# ----------------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------------

COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestExactnessProperties:
    @settings(**COMMON_SETTINGS)
    @given(data=graphs_with_pairs(), ordering=st.sampled_from(["degree", "random"]))
    def test_index_matches_bfs(self, data, ordering):
        graph, pairs = data
        index = PrunedLandmarkLabeling(ordering=ordering, seed=0).build(graph)
        for s, t in pairs:
            assert index.distance(s, t) == true_distance(graph, s, t)

    @settings(**COMMON_SETTINGS)
    @given(data=graphs_with_pairs(), num_bp=st.integers(min_value=1, max_value=6))
    def test_index_with_bit_parallel_matches_bfs(self, data, num_bp):
        graph, pairs = data
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(graph)
        for s, t in pairs:
            assert index.distance(s, t) == true_distance(graph, s, t)

    @settings(**COMMON_SETTINGS)
    @given(data=graphs_with_pairs())
    def test_symmetry(self, data):
        """Undirected distances are symmetric through the index."""
        graph, pairs = data
        index = PrunedLandmarkLabeling().build(graph)
        for s, t in pairs:
            assert index.distance(s, t) == index.distance(t, s)


class TestLabelInvariants:
    @settings(**COMMON_SETTINGS)
    @given(graph=random_graphs())
    def test_labels_sorted_and_unique(self, graph):
        order = compute_order(graph, "degree")
        labels, _ = build_pruned_labels(graph, order)
        for v in range(labels.num_vertices):
            hubs, dists = labels.vertex_label(v)
            if hubs.shape[0] > 1:
                assert np.all(np.diff(hubs) > 0)
            # Label distances are real distances to the hub vertex.
            truth = bfs_distances(graph, v)
            for hub_rank, distance in zip(hubs, dists):
                hub_vertex = int(labels.order[hub_rank])
                assert truth[hub_vertex] == distance

    @settings(**COMMON_SETTINGS)
    @given(graph=random_graphs())
    def test_hub_rank_never_exceeds_own_rank(self, graph):
        """A vertex is only labelled by hubs processed no later than itself."""
        order = compute_order(graph, "degree")
        labels, _ = build_pruned_labels(graph, order)
        rank = labels.rank
        for v in range(labels.num_vertices):
            hubs, _ = labels.vertex_label(v)
            if hubs.shape[0]:
                assert hubs.max() <= rank[v] or hubs.min() <= rank[v]
                # Strongest form: every hub rank is at most the vertex's own rank.
                assert np.all(hubs <= rank[v])

    @settings(**COMMON_SETTINGS)
    @given(graph=random_graphs(), num_bp=st.integers(min_value=0, max_value=4))
    def test_query_never_underestimates(self, graph, num_bp):
        """2-hop queries over any label set are upper bounds on true distances."""
        order = compute_order(graph, "degree")
        bp = build_bit_parallel_labels(graph, order, num_bp)
        labels, _ = build_pruned_labels(graph, order, bit_parallel=bp)
        rng = np.random.default_rng(0)
        n = graph.num_vertices
        for _ in range(10):
            s, t = int(rng.integers(0, n)), int(rng.integers(0, n))
            truth = true_distance(graph, s, t)
            assert labels.query(s, t) >= truth
            assert bp.query(s, t) >= truth


class TestBitParallelProperties:
    @settings(**COMMON_SETTINGS)
    @given(graph=random_graphs(max_vertices=30))
    def test_bit_parallel_distances_exact_from_root(self, graph):
        order = compute_order(graph, "degree")
        bp = build_bit_parallel_labels(graph, order, 2)
        for i in range(bp.num_roots):
            root = int(bp.roots[i])
            truth = bfs_distances(graph, root)
            stored = bp.dist[i]
            reachable = truth != UNREACHABLE
            assert np.array_equal(stored[reachable], truth[reachable].astype(np.uint16))
            assert np.all(stored[~reachable] == np.iinfo(np.uint16).max)


class TestDeterminism:
    @settings(**COMMON_SETTINGS)
    @given(graph=random_graphs())
    def test_same_seed_same_index(self, graph):
        a = PrunedLandmarkLabeling(ordering="degree", num_bit_parallel_roots=2).build(
            graph
        )
        b = PrunedLandmarkLabeling(ordering="degree", num_bit_parallel_roots=2).build(
            graph
        )
        assert np.array_equal(a.label_set.hub_ranks, b.label_set.hub_ranks)
        assert np.array_equal(a.label_set.distances, b.label_set.distances)
        assert np.array_equal(a.label_set.indptr, b.label_set.indptr)

"""Unit tests for edge-list reading and writing."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.io import read_edge_list, read_graph, write_edge_list, write_graph


class TestReadEdgeList:
    def test_basic_read(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n0 1\n1 2\n\n2 3\n")
        graph, labeling = read_edge_list(path)
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert labeling.id_of(0) == 0

    def test_comment_styles_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# hash\n% percent\n// slashes\n0 1\n")
        graph, _ = read_edge_list(path)
        assert graph.num_edges == 1

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("0\t1\n1\t2\n")
        graph, _ = read_edge_list(path)
        assert graph.num_edges == 2

    def test_string_vertex_names(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alice bob\nbob carol\n")
        graph, labeling = read_edge_list(path, integer_ids=False)
        assert graph.num_vertices == 3
        assert "carol" in labeling

    def test_weighted_read(self, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("0 1 2.5\n1 2 1.0\n")
        graph, _ = read_edge_list(path, weighted=True)
        assert graph.weighted
        assert graph.edge_weight(0, 1) == 2.5

    def test_directed_read(self, tmp_path):
        path = tmp_path / "directed.txt"
        path.write_text("0 1\n1 2\n")
        graph, _ = read_edge_list(path, directed=True)
        assert graph.directed
        assert not graph.has_edge(1, 0)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphError):
            read_edge_list(path, weighted=True)

    def test_gzip_read(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        graph, _ = read_edge_list(path)
        assert graph.num_edges == 2

    def test_read_graph_wrapper(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = read_graph(path)
        assert isinstance(graph, Graph)


class TestWriteEdgeList:
    def test_roundtrip_unweighted(self, tmp_path, small_social_graph):
        path = tmp_path / "out.txt"
        write_edge_list(small_social_graph, path, header="test graph")
        loaded, _ = read_edge_list(path)
        assert loaded.structurally_equal(small_social_graph)

    def test_roundtrip_weighted(self, tmp_path, small_weighted_graph):
        path = tmp_path / "out.txt"
        write_edge_list(small_weighted_graph, path)
        loaded, _ = read_edge_list(path, weighted=True)
        assert loaded.structurally_equal(small_weighted_graph)

    def test_roundtrip_gzip(self, tmp_path, path_graph):
        path = tmp_path / "out.txt.gz"
        write_graph(path_graph, path)
        loaded = read_graph(path)
        assert loaded.structurally_equal(path_graph)

    def test_labeled_output(self, tmp_path):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        graph, labeling = builder.build()
        path = tmp_path / "named.txt"
        write_edge_list(graph, path, labeling=labeling)
        content = path.read_text()
        assert "alice" in content and "bob" in content

    def test_header_written(self, tmp_path, path_graph):
        path = tmp_path / "out.txt"
        write_edge_list(path_graph, path, header="my header")
        first_line = path.read_text().splitlines()[0]
        assert first_line == "# my header"

"""Tests for the suite registry, runner, trend report, and /metrics scrape."""

from __future__ import annotations

import http.server
import threading

import pytest

from repro.obs import (
    Metric,
    SchemaError,
    bench_result,
    format_trend,
    get_suite,
    list_suites,
    load_history,
    run_suite,
    run_suites,
    scrape_url,
    write_result,
)
from repro.obs.registry import benchmarks_dir

#: A fake suite script, parameterised by body via str.format.
_FAKE_KERNELS = '''\
import json
from pathlib import Path

from repro.obs import bench_result

def collect_results(*, smoke=False):
    counter_file = Path(__file__).with_suffix(".count")
    runs = int(counter_file.read_text()) + 1 if counter_file.exists() else 1
    counter_file.write_text(str(runs))
    return bench_result(
        "kernels",
        [{{"name": "qps", "value": {value}, "higher_is_better": True}}],
        smoke=smoke,
    )
'''


@pytest.fixture
def fake_bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    return tmp_path


class TestRegistry:
    def test_all_suites_have_scripts_on_disk(self):
        for suite in list_suites():
            assert suite.path().is_file(), suite.name

    def test_get_suite_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown bench suite"):
            get_suite("nope")

    def test_env_override_redirects_scripts(self, fake_bench_dir):
        assert benchmarks_dir() == fake_bench_dir
        assert get_suite("kernels").path().parent == fake_bench_dir

    def test_run_suite_missing_script(self, fake_bench_dir):
        with pytest.raises(FileNotFoundError, match="REPRO_BENCH_DIR"):
            run_suite("kernels")

    def test_run_suite_without_adapter_rejected(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text("x = 1\n")
        with pytest.raises(SchemaError, match="collect_results"):
            run_suite("kernels")

    def test_run_suite_wrong_type_rejected(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text(
            "def collect_results(*, smoke=False):\n    return {'qps': 1}\n"
        )
        with pytest.raises(SchemaError, match="expected BenchResult"):
            run_suite("kernels")

    def test_run_suite_wrong_suite_label_rejected(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text(
            "from repro.obs import bench_result\n"
            "def collect_results(*, smoke=False):\n"
            "    return bench_result('dynamic', [('qps', 1.0)], smoke=smoke)\n"
        )
        with pytest.raises(SchemaError, match="labelled"):
            run_suite("kernels")

    def test_run_suite_valid(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text(_FAKE_KERNELS.format(value=100.0))
        result = run_suite("kernels", smoke=True)
        assert result.suite == "kernels"
        assert result.fingerprint.smoke
        assert result.metric("qps").value == 100.0


class TestRunner:
    def test_unknown_name_fails_before_running(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text(_FAKE_KERNELS.format(value=1.0))
        with pytest.raises(KeyError):
            run_suites(["kernels", "typo"])
        # The valid suite must not have run.
        assert not (fake_bench_dir / "bench_kernels.count").exists()

    def test_repeat_merges_samples(self, fake_bench_dir):
        (fake_bench_dir / "bench_kernels.py").write_text(
            _FAKE_KERNELS.format(value="100.0 * runs")
        )
        (result,) = run_suites(["kernels"], repeat=3)
        metric = result.metric("qps")
        assert metric.samples == (100.0, 200.0, 300.0)
        assert metric.value == 300.0  # best-of-N for higher-is-better

    def test_writes_results_and_echoes(self, fake_bench_dir, tmp_path):
        (fake_bench_dir / "bench_kernels.py").write_text(_FAKE_KERNELS.format(value=1.0))
        out = tmp_path / "out"
        lines = []
        run_suites(["kernels"], smoke=True, out_dir=out, echo=lines.append)
        assert (out / "BENCH_kernels.json").is_file()
        assert any("running kernels [smoke]" in line for line in lines)

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            run_suites(["kernels"], repeat=0)


class TestTrendReport:
    def test_history_skips_unreadable_and_sorts_by_time(self, tmp_path):
        old = bench_result("kernels", [("qps", 1.0)])
        new = bench_result("kernels", [("qps", 2.0)])
        object.__setattr__(old.fingerprint, "timestamp", 100.0)
        object.__setattr__(new.fingerprint, "timestamp", 200.0)
        write_result(new, tmp_path / "b")
        write_result(old, tmp_path / "a")
        (tmp_path / "a" / "BENCH_corrupt.json").write_text("{nope")
        history = load_history(tmp_path)
        assert [r.metric("qps").value for r in history] == [1.0, 2.0]

    def test_format_trend_marks_smoke_columns(self):
        smoke = bench_result("kernels", [Metric("qps", 1.0, unit="q/s")], smoke=True)
        full = bench_result("kernels", [Metric("qps", 2.0, unit="q/s")])
        text = format_trend([smoke, full])
        assert "kernels" in text
        assert "qps [q/s]" in text
        assert "* = smoke configuration" in text

    def test_format_trend_tolerates_metricless_runs(self):
        """A run with zero metrics renders its header instead of crashing."""
        empty = bench_result("kernels", [])
        text = format_trend([empty])
        assert "kernels" in text
        assert "1 run(s)" in text

    def test_load_history_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_history(tmp_path / "absent")


class _ExpositionHandler(http.server.BaseHTTPRequestHandler):
    body = b""

    def do_GET(self):  # noqa: N802 - http.server API
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.end_headers()
        self.wfile.write(self.body)

    def log_message(self, *args):  # quiet test output
        pass


@pytest.fixture
def exposition_server():
    server = http.server.HTTPServer(("127.0.0.1", 0), _ExpositionHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestScrape:
    def test_scrape_live_exposition(self, exposition_server):
        _ExpositionHandler.body = (
            b"# HELP repro_pll_queries_per_second throughput\n"
            b"# TYPE repro_pll_queries_per_second gauge\n"
            b"repro_pll_queries_per_second_qps 123.5\n"
            b"repro_pll_process_rss_bytes 1048576\n"
            b"repro_pll_event_loop_lag_seconds 0.002\n"
            b'repro_pll_verb_queries_total{verb="pair"} 10\n'
        )
        port = exposition_server.server_port
        result = scrape_url(f"127.0.0.1:{port}/metrics", suite="livebox")
        assert result.suite == "livebox"
        by_name = {m.name: m for m in result.metrics}
        # Labelled series are not label-free samples; only 3 scalars survive.
        assert len(by_name) == 3
        assert by_name["repro_pll_queries_per_second_qps"].higher_is_better is True
        assert by_name["repro_pll_process_rss_bytes"].unit == "bytes"
        lag = by_name["repro_pll_event_loop_lag_seconds"]
        assert lag.unit == "seconds" and lag.higher_is_better is False

    def test_scrape_rejects_malformed_body(self, exposition_server):
        _ExpositionHandler.body = b"not a metric line at all\n"
        port = exposition_server.server_port
        with pytest.raises(AssertionError):
            scrape_url(f"127.0.0.1:{port}/metrics")

    def test_scrape_connection_refused_raises_oserror(self):
        with pytest.raises(OSError):
            scrape_url("127.0.0.1:1/metrics", timeout=0.5)

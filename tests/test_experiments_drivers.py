"""Integration tests for the table/figure experiment drivers.

Each driver is run on a reduced configuration (one or two of the smaller
datasets, few query pairs) so the whole module stays within a few tens of
seconds while still exercising the complete code path that the benchmark
suite uses at full scale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.experiments import (
    format_ablation,
    format_figure2,
    format_figure3,
    format_figure4,
    format_figure5,
    format_scaling,
    format_table1,
    format_table3,
    format_table4,
    format_table5,
    ordering_ablation,
    pruning_ablation,
    run_figure2_degrees,
    run_figure2_distances,
    run_figure3,
    run_figure4,
    run_figure5,
    run_scaling,
    run_table1,
    run_table3,
    run_table4,
    run_table5,
    theorem43_check,
)


class TestTableDrivers:
    def test_table1(self):
        rows = run_table1(["notredame"], num_queries=100)
        text = format_table1(rows)
        assert any(row["source"] == "measured" for row in rows)
        assert any(row["source"] == "published" for row in rows)
        assert "PLL" in text

    def test_table3_with_baselines(self):
        measurements = run_table3(
            ["notredame"], num_queries=200, include_baselines=True, online_query_cap=10
        )
        methods = {m.method for m in measurements}
        assert {"PLL", "HHL", "TreeDec", "BFS", "BiBFS"} <= methods
        pll = next(m for m in measurements if m.method == "PLL")
        assert pll.finished and pll.indexing_seconds > 0
        text = format_table3(measurements)
        assert "notredame" in text

    def test_table3_pll_only(self):
        measurements = run_table3(
            ["gnutella"], num_queries=100, include_baselines=False
        )
        assert len(measurements) == 1
        assert measurements[0].method == "PLL"

    def test_table3_pll_beats_online_bfs_queries(self):
        measurements = run_table3(
            ["gnutella"], num_queries=200, include_baselines=True, online_query_cap=10
        )
        pll = next(m for m in measurements if m.method == "PLL")
        bfs = next(m for m in measurements if m.method == "BFS")
        assert pll.query_seconds < bfs.query_seconds

    def test_table4(self):
        rows = run_table4(["gnutella", "epinions"], with_statistics=True, num_pairs=200)
        assert len(rows) == 2
        assert rows[0]["type"] == "Computer"
        assert "Table 4" in format_table4(rows)

    def test_table5(self):
        rows = run_table5(["notredame"], strategies=["degree", "random"])
        assert len(rows) == 1
        row = rows[0]
        # Random ordering produces (much) larger labels than Degree.
        assert row["random"] > row["degree"]
        assert "Table 5" in format_table5(rows)


class TestFigureDrivers:
    def test_figure2(self):
        degrees = run_figure2_degrees(["gnutella", "notredame"])
        distances = run_figure2_distances(["gnutella", "notredame"], num_pairs=500)
        assert len(degrees) == 2 and len(distances) == 2
        # Power-law CCDF slope is negative; distances are small-world.
        assert degrees[0].power_law_slope() < 0
        assert distances[0].average_distance() < 10
        text = format_figure2(degrees, distances)
        assert "Figure 2" in text

    def test_figure3(self):
        profiles = run_figure3(["notredame"])
        profile = profiles[0]
        n = load_dataset("notredame").num_vertices
        assert profile.labels_per_bfs.shape[0] == n
        # The first BFS labels the most vertices; late BFSs label almost nothing.
        assert profile.labels_per_bfs[0] == profile.labels_per_bfs.max()
        assert profile.labels_per_bfs[-100:].mean() < 0.1 * profile.labels_per_bfs[0]
        assert np.isclose(profile.cumulative_fraction[-1], 1.0)
        assert profile.label_size_percentile(99) >= profile.label_size_percentile(50)
        assert "Figure 3" in format_figure3(profiles)

    def test_figure4(self):
        curves = run_figure4(["notredame"], num_pairs=400)
        curve = curves[0]
        assert np.all(np.diff(curve.overall) >= 0)
        assert np.isclose(curve.overall[-1], 1.0)
        # Coverage grows with x and the early checkpoints already cover a lot
        # (the paper's "most pairs are covered in the beginning").
        assert curve.coverage_at(64) > 0.3
        assert "Figure 4" in format_figure4(curves)

    def test_figure4_distant_pairs_covered_earlier(self):
        curves = run_figure4(["epinions"], num_pairs=600)
        curve = curves[0]
        distances = sorted(curve.by_distance)
        if len(distances) >= 3:
            early_checkpoint = 8
            index = int(np.flatnonzero(curve.checkpoints <= early_checkpoint)[-1])
            close = curve.by_distance[distances[0]][index]
            far = curve.by_distance[distances[-1]][index]
            assert far >= close

    def test_figure5(self):
        points = run_figure5(["notredame"], sweep=[0, 4, 16], num_queries=200)
        assert len(points) == 3
        by_t = {p.num_bit_parallel: p for p in points}
        # Bit-parallel labels shrink the normal labels (paper Figure 5c).
        assert (
            by_t[16].average_normal_label_size < by_t[0].average_normal_label_size
        )
        assert "Figure 5" in format_figure5(points)


class TestScaling:
    def test_scaling_driver(self):
        points = run_scaling(
            [300, 600], num_queries=100, num_bit_parallel_roots=4
        )
        assert len(points) == 2
        assert points[0].num_vertices < points[1].num_vertices
        assert points[1].indexing_seconds > 0
        assert points[1].index_bytes > points[0].index_bytes
        text = format_scaling(points)
        assert "Scalability" in text
        record = points[0].as_dict()
        assert record["num_vertices"] == points[0].num_vertices


class TestAblations:
    def test_pruning_ablation(self):
        graph = load_dataset("notredame")
        rows = pruning_ablation(graph)
        pruned = next(r for r in rows if "pruned" in r["method"])
        naive = next(r for r in rows if "naive" in r["method"])
        assert pruned["total label entries"] < 0.2 * naive["total label entries"]
        assert "Ablation" in format_ablation(rows, "Ablation: pruning")

    def test_ordering_ablation(self):
        rows = ordering_ablation(["notredame"], strategies=["degree", "random"])
        degree = next(r for r in rows if r["strategy"] == "degree")
        random = next(r for r in rows if r["strategy"] == "random")
        assert degree["avg label size"] < random["avg label size"]
        assert degree["total visited"] < random["total visited"]

    def test_theorem43_check(self):
        rows = theorem43_check("notredame", landmark_counts=(4, 32), num_pairs=300)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["landmark exact fraction"] <= 1.0
            assert row["within bound"]

"""Unit tests for GraphBuilder and VertexLabeling."""

from __future__ import annotations

import pytest

from repro.errors import EdgeError
from repro.graph.builder import GraphBuilder, VertexLabeling


class TestVertexLabeling:
    def test_add_assigns_sequential_ids(self):
        labeling = VertexLabeling()
        assert labeling.add("a") == 0
        assert labeling.add("b") == 1
        assert labeling.add("a") == 0
        assert len(labeling) == 2

    def test_lookup_both_directions(self):
        labeling = VertexLabeling()
        labeling.add("x")
        labeling.add("y")
        assert labeling.id_of("y") == 1
        assert labeling.label_of(0) == "x"
        assert labeling.labels() == ["x", "y"]

    def test_contains(self):
        labeling = VertexLabeling()
        labeling.add(42)
        assert 42 in labeling
        assert 43 not in labeling

    def test_unknown_label_raises(self):
        labeling = VertexLabeling()
        with pytest.raises(KeyError):
            labeling.id_of("missing")


class TestGraphBuilder:
    def test_basic_build(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "carol")
        graph, labeling = builder.build()
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert labeling.label_of(0) == "alice"
        assert graph.has_edge(labeling.id_of("alice"), labeling.id_of("bob"))

    def test_isolated_vertex(self):
        builder = GraphBuilder()
        builder.add_vertex("lonely")
        builder.add_edge("a", "b")
        graph, labeling = builder.build()
        assert graph.num_vertices == 3
        assert graph.degree(labeling.id_of("lonely")) == 0

    def test_integer_labels(self):
        builder = GraphBuilder()
        builder.add_edge(10, 20)
        builder.add_edge(20, 30)
        graph, labeling = builder.build()
        assert graph.num_vertices == 3
        assert labeling.id_of(30) == 2

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c"), ("c", "a")])
        graph, _ = builder.build()
        assert graph.num_edges == 3

    def test_duplicate_edges_collapse(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.add_edge("b", "a")
        graph, _ = builder.build()
        assert builder.num_edge_records == 2
        assert graph.num_edges == 1

    def test_directed_builder(self):
        builder = GraphBuilder(directed=True)
        builder.add_edge("a", "b")
        graph, labeling = builder.build()
        assert graph.directed
        assert graph.has_edge(labeling.id_of("a"), labeling.id_of("b"))
        assert not graph.has_edge(labeling.id_of("b"), labeling.id_of("a"))

    def test_weighted_builder(self):
        builder = GraphBuilder(weighted=True)
        builder.add_edge("a", "b", 2.5)
        graph, labeling = builder.build()
        assert graph.weighted
        assert graph.edge_weight(labeling.id_of("a"), labeling.id_of("b")) == 2.5

    def test_weighted_builder_requires_weight(self):
        builder = GraphBuilder(weighted=True)
        with pytest.raises(EdgeError):
            builder.add_edge("a", "b")

    def test_unweighted_builder_rejects_weight(self):
        builder = GraphBuilder()
        with pytest.raises(EdgeError):
            builder.add_edge("a", "b", 1.0)

    def test_negative_weight_rejected(self):
        builder = GraphBuilder(weighted=True)
        with pytest.raises(EdgeError):
            builder.add_edge("a", "b", -3.0)

    def test_bulk_weights_alignment_checked(self):
        builder = GraphBuilder(weighted=True)
        with pytest.raises(EdgeError):
            builder.add_edges([("a", "b"), ("b", "c")], weights=[1.0])

    def test_bulk_weights(self):
        builder = GraphBuilder(weighted=True)
        builder.add_edges([("a", "b"), ("b", "c")], weights=[1.0, 4.0])
        graph, labeling = builder.build()
        assert graph.edge_weight(labeling.id_of("b"), labeling.id_of("c")) == 4.0

    def test_builder_properties(self):
        builder = GraphBuilder(directed=True, weighted=True)
        assert builder.directed and builder.weighted
        assert builder.num_vertices == 0

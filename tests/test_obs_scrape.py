"""Tests for ``repro.obs.scrape``: exposition → BenchResult conversion.

Runs the inference against a *recorded* exposition rendered by the real
serving renderer — including the labelled ``ALERTS`` series and the shadow
canary counters — so the scrape path is exercised on exactly the text a live
front end exposes, without a socket.
"""

from __future__ import annotations

import pytest

from repro.obs import names, result_from_exposition
from repro.serving.metrics import render_prometheus_text


def _recorded_exposition():
    """Render a snapshot shaped like a live server's, with alerts active."""
    stats = {
        names.NUM_REQUESTS: 42.0,
        names.CACHE_HIT_RATE: 0.85,
        names.EVENT_LOOP_LAG_SECONDS: 0.001,
        names.GC_PAUSE_SECONDS_TOTAL: 0.25,
        names.SHADOW_PAIRS_TOTAL: 4096.0,
        names.SHADOW_MISMATCHES_TOTAL: 0.0,
        names.ALERTS_FIRING: 1.0,
        names.QPS: 120000.0,
        "alerts": [
            {
                "alertname": "ShadowMismatch",
                "severity": "page",
                "alertstate": "firing",
            }
        ],
        "histograms": {
            names.LATENCY_SECONDS: {
                "buckets": [(0.025, 40.0), (float("inf"), 42.0)],
                "count": 42.0,
                "sum": 0.9,
            }
        },
    }
    return render_prometheus_text(stats)


class TestResultFromExposition:
    @pytest.fixture
    def result(self):
        return result_from_exposition(_recorded_exposition())

    def _metric(self, result, name):
        (match,) = [m for m in result.metrics if m.name == name]
        return match

    def test_suite_and_schema_shape(self, result):
        assert result.suite == "scrape"
        assert result.metrics  # label-free samples became metrics

    def test_labelled_alerts_series_is_not_a_metric(self, result):
        """``ALERTS{...}`` passes grammar validation but carries labels, so
        it must not appear as a gateable metric."""
        assert "ALERTS" not in {m.name for m in result.metrics}
        assert 'ALERTS{alertname="ShadowMismatch"' in _recorded_exposition()

    def test_mismatch_counter_gates_downward(self, result):
        metric = self._metric(result, "repro_pll_shadow_mismatches_total")
        assert metric.value == 0.0
        assert metric.higher_is_better is False

    def test_unit_inference_from_suffixes(self, result):
        assert (
            self._metric(result, "repro_pll_event_loop_lag_seconds").unit == "seconds"
        )
        assert (
            self._metric(result, "repro_pll_gc_pause_seconds_total").unit == "seconds"
        )
        assert self._metric(result, "repro_pll_shadow_pairs_total").unit == ""

    def test_direction_inference(self, result):
        assert self._metric(result, "repro_pll_cache_hit_rate").higher_is_better is True
        assert self._metric(result, "repro_pll_qps").higher_is_better is True
        assert (
            self._metric(result, "repro_pll_event_loop_lag_seconds").higher_is_better
            is False
        )
        assert (
            self._metric(result, "repro_pll_gc_pause_seconds_total").higher_is_better
            is False
        )
        # Plain counters stay informational: their value is uptime-relative.
        assert self._metric(result, "repro_pll_num_requests").higher_is_better is None

    def test_histogram_summary_series_survive(self, result):
        names_seen = {m.name for m in result.metrics}
        assert "repro_pll_latency_seconds_count" in names_seen
        assert "repro_pll_latency_seconds_sum" in names_seen

    def test_custom_suite_name(self):
        result = result_from_exposition(_recorded_exposition(), suite="incident-4711")
        assert result.suite == "incident-4711"

    def test_malformed_exposition_rejected(self):
        with pytest.raises(AssertionError):
            result_from_exposition("this is not an exposition\n")

"""Tests for query workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.workloads import (
    distance_stratified_workload,
    random_pair_workload,
    random_pairs,
)
from repro.graph.csr import Graph
from repro.graph.traversal import bfs_distance


class TestRandomPairs:
    def test_count_and_range(self, small_social_graph):
        pairs = random_pairs(small_social_graph.num_vertices, 100, seed=0)
        assert len(pairs) == 100
        for s, t in pairs:
            assert 0 <= s < small_social_graph.num_vertices
            assert 0 <= t < small_social_graph.num_vertices
            assert s != t

    def test_determinism(self):
        assert random_pairs(50, 20, seed=3) == random_pairs(50, 20, seed=3)
        assert random_pairs(50, 20, seed=3) != random_pairs(50, 20, seed=4)

    def test_requires_two_vertices(self):
        with pytest.raises(ExperimentError):
            random_pairs(1, 5)

    def test_allow_identical(self):
        pairs = random_pairs(2, 50, seed=0, distinct=False)
        assert len(pairs) == 50


class TestRandomPairWorkload:
    def test_without_ground_truth(self, small_social_graph):
        workload = random_pair_workload(small_social_graph, 30, seed=1)
        assert len(workload) == 30
        assert workload.true_distances is None
        with pytest.raises(ExperimentError):
            workload.finite_pairs()

    def test_with_ground_truth(self, small_social_graph):
        workload = random_pair_workload(
            small_social_graph, 30, seed=1, with_ground_truth=True
        )
        assert workload.true_distances.shape[0] == 30
        for (s, t), dist in zip(workload.pairs, workload.true_distances):
            assert dist == bfs_distance(small_social_graph, s, t)
        assert len(workload.finite_pairs()) <= 30

    def test_disconnected_graph_ground_truth(self, disconnected_graph):
        workload = random_pair_workload(
            disconnected_graph, 40, seed=2, with_ground_truth=True
        )
        assert np.isinf(workload.true_distances).any()


class TestStratifiedWorkload:
    def test_grouping_by_distance(self, medium_social_graph):
        workload = distance_stratified_workload(medium_social_graph, 200, seed=3)
        assert len(workload) > 0
        assert np.isfinite(workload.true_distances).all()
        for distance, indices in workload.by_distance.items():
            for index in indices:
                assert workload.true_distances[index] == distance

    def test_max_distance_filter(self, medium_social_graph):
        workload = distance_stratified_workload(
            medium_social_graph, 200, seed=3, max_distance=3
        )
        assert all(d <= 3 for d in workload.by_distance)

    def test_drops_disconnected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        workload = distance_stratified_workload(graph, 100, seed=0)
        assert np.isfinite(workload.true_distances).all()

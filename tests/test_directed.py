"""Tests for the directed (IN/OUT labels) variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.directed import DirectedPrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError
from repro.generators import barabasi_albert_graph, orient_edges
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances
from tests.conftest import sample_pairs


def true_directed_distance(graph: Graph, s: int, t: int) -> float:
    d = bfs_distances(graph, s)[t]
    return float("inf") if d == UNREACHABLE else float(d)


class TestDirectedIndex:
    def test_unbuilt_raises(self):
        oracle = DirectedPrunedLandmarkLabeling()
        with pytest.raises(IndexStateError):
            oracle.distance(0, 1)

    def test_rejects_undirected(self, path_graph):
        with pytest.raises(IndexBuildError):
            DirectedPrunedLandmarkLabeling().build(path_graph)

    def test_simple_chain(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)], directed=True)
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        assert oracle.distance(0, 3) == 3.0
        assert oracle.distance(3, 0) == float("inf")
        assert oracle.distance(1, 1) == 0.0

    def test_cycle(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], directed=True)
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        assert oracle.distance(0, 3) == 3.0
        assert oracle.distance(3, 0) == 1.0

    def test_asymmetry_respected(self):
        graph = orient_edges(
            barabasi_albert_graph(150, 2, seed=1), both_directions_probability=0.2, seed=1
        )
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        asymmetric_found = False
        for s, t in sample_pairs(graph, 200, seed=2):
            forward = oracle.distance(s, t)
            backward = oracle.distance(t, s)
            if forward != backward:
                asymmetric_found = True
                break
        assert asymmetric_found

    def test_exactness_random_directed_graphs(self):
        for seed in range(3):
            graph = orient_edges(
                barabasi_albert_graph(120, 2, seed=seed),
                both_directions_probability=0.3,
                seed=seed,
            )
            oracle = DirectedPrunedLandmarkLabeling().build(graph)
            for s, t in sample_pairs(graph, 150, seed=seed):
                assert oracle.distance(s, t) == true_directed_distance(graph, s, t)

    def test_batch_and_introspection(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], directed=True)
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        batch = oracle.distances([(0, 4), (4, 0)])
        assert list(batch) == [4.0, 1.0]
        assert oracle.average_label_size() > 0
        assert oracle.index_size_bytes() > 0
        assert oracle.build_seconds > 0
        assert oracle.out_labels.num_vertices == 5
        assert oracle.in_labels.num_vertices == 5

    def test_labels_sorted(self):
        graph = orient_edges(barabasi_albert_graph(80, 2, seed=5), seed=5)
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        for v in range(graph.num_vertices):
            for labels in (oracle.out_labels, oracle.in_labels):
                hubs, _ = labels.vertex_label(v)
                if hubs.shape[0] > 1:
                    assert np.all(np.diff(hubs) > 0)

    def test_bad_order_rejected(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            DirectedPrunedLandmarkLabeling().build(graph, order=[0, 1, 1])


class TestDirectedProperties:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        n=st.integers(min_value=3, max_value=25),
    )
    def test_random_digraphs_match_bfs(self, seed, n):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(0, 4 * n))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(num_edges)
        ]
        graph = Graph(n, edges, directed=True)
        oracle = DirectedPrunedLandmarkLabeling().build(graph)
        for _ in range(10):
            s, t = int(rng.integers(0, n)), int(rng.integers(0, n))
            assert oracle.distance(s, t) == true_directed_distance(graph, s, t)

"""Tests for the pluggable batch-kernel layer (selection, dtypes, identity).

The kernel contract has three legs:

* **Selection** — ``auto`` picks the best available backend, explicit names
  pin one, anything that cannot serve falls back to the numpy baseline with
  the fallback flagged (logged on ``repro.kernels`` and surfaced through the
  metrics endpoint).
* **Dtype planning** — the narrow uint32/uint8 layout is chosen per
  generation at freeze time, guarded against key/distance overflow, and
  recorded in the layout metadata so attaching workers agree byte for byte.
* **Byte-identity** — every backend (including the un-jitted numba loop
  logic, which runs under the plain interpreter when numba is absent)
  produces bit-identical distance arrays.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.core.kernels import (
    KERNEL_CHOICES,
    KernelUnavailableError,
    available_kernels,
    create_kernel,
    kernel_preference,
    plan_dtypes,
    registered_kernels,
    select_kernel,
    set_default_kernel,
)
from repro.core.kernels.base import NARROW_MAX_DISTANCE, DtypePlan
from repro.core.kernels.narrow import NARROW_FIELDS, NarrowKernel
from repro.core.kernels.numba_kernel import (
    NumbaKernel,
    _JIT_NO_HUB,
    _one_to_many_loop,
    _query_pairs_loop,
    _rooted_probe_loop,
    numba_installed,
)
from repro.core.kernels.numpy_kernel import NumpyKernel
from repro.core.serialization import index_from_backend, load_index, save_index
from repro.generators import barabasi_albert_graph
from repro.graph.csr import Graph
from repro.serving import BatchQueryEngine, SnapshotManager
from repro.serving.metrics import index_health_stats, render_prometheus_text


@pytest.fixture
def restore_kernel_preference():
    """Snapshot and restore the process-wide kernel preference."""
    previous = set_default_kernel(None)
    set_default_kernel(previous)
    yield
    set_default_kernel(previous)


@pytest.fixture
def built_index(small_social_graph):
    return PrunedLandmarkLabeling().build(small_social_graph)


def _long_path_index(length: int = 300) -> PrunedLandmarkLabeling:
    """A path graph whose diameter exceeds the narrow distance bound."""
    graph = Graph(length, [(i, i + 1) for i in range(length - 1)])
    return PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(graph)


# ---------------------------------------------------------------------------
# Dtype planning
# ---------------------------------------------------------------------------


class TestDtypePlan:
    def test_small_index_plans_narrow(self):
        plan = plan_dtypes(1_000, np.asarray([0, 3, NARROW_MAX_DISTANCE], dtype=np.uint16))
        assert plan.narrow
        assert plan.key_dtype == "uint32"
        assert plan.dist_dtype == "uint8"
        assert plan.max_distance == NARROW_MAX_DISTANCE

    def test_distance_255_forces_wide(self):
        plan = plan_dtypes(1_000, np.asarray([NARROW_MAX_DISTANCE + 1], dtype=np.uint16))
        assert not plan.narrow
        assert plan.key_dtype == "int64"
        assert plan.dist_dtype == "uint16"

    def test_key_overflow_forces_wide(self):
        # 2**16.5 vertices: n*n - 1 exceeds uint32, even with tiny distances.
        plan = plan_dtypes(100_000, np.asarray([1], dtype=np.uint16))
        assert not plan.narrow

    def test_empty_distances(self):
        assert plan_dtypes(10, np.empty(0, dtype=np.uint16)).narrow

    def test_meta_round_trip(self):
        plan = plan_dtypes(50, np.asarray([7], dtype=np.uint16))
        assert DtypePlan.from_meta(plan.to_meta()) == plan

    def test_long_path_index_keeps_wide_layout(self):
        index = _long_path_index()
        kernel = index.prepare_batch_kernel()
        assert not kernel.plan.narrow
        assert kernel.plan.max_distance >= NARROW_MAX_DISTANCE + 1
        assert kernel.export_narrow_fields() == {}


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


class TestSelection:
    def test_registry_matches_cli_choices(self):
        assert set(registered_kernels()) == set(KERNEL_CHOICES) - {"auto"}
        assert "numpy" in available_kernels()

    def test_auto_picks_highest_priority_available(self, built_index):
        kernel = built_index.prepare_batch_kernel()
        assert not kernel.selection.fallback
        if numba_installed():
            assert kernel.backend_name == "numba"
        else:
            # The index is small: the narrow layout applies and outranks numpy.
            assert kernel.backend_name == "narrow"

    def test_auto_skips_narrow_silently_on_wide_layout(self):
        index = _long_path_index()
        kernel = index.prepare_batch_kernel()
        if not numba_installed():
            assert kernel.backend_name == "numpy"
            # Skipping an inapplicable backend under auto is not a fallback.
            assert not kernel.selection.fallback

    @pytest.mark.skipif(numba_installed(), reason="needs a numba-free host")
    def test_explicit_numba_without_numba_falls_back(self, built_index, caplog):
        base = built_index.prepare_batch_kernel()
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            clone = base.using("numba")
        assert clone.backend_name == "numpy"
        assert clone.selection.fallback
        assert "not available" in clone.selection.reason
        assert any("kernel fallback" in rec.message for rec in caplog.records)

    def test_explicit_narrow_on_wide_layout_falls_back(self):
        index = _long_path_index()
        clone = index.prepare_batch_kernel().using("narrow")
        assert clone.backend_name == "numpy"
        assert clone.selection.fallback
        assert "does not support" in clone.selection.reason

    def test_constructor_failure_falls_back_and_is_logged(
        self, built_index, monkeypatch, caplog, restore_kernel_preference
    ):
        monkeypatch.setattr(NumbaKernel, "available", classmethod(lambda cls: True))

        def boom(self, data):
            raise RuntimeError("synthetic compile failure")

        monkeypatch.setattr(NumbaKernel, "__init__", boom)
        base = built_index.prepare_batch_kernel()
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            clone = base.using("numba")
        assert clone.backend_name in ("numpy", "narrow")
        assert clone.selection.fallback
        assert "synthetic compile failure" in clone.selection.reason

    def test_env_var_preference(self, monkeypatch, restore_kernel_preference):
        set_default_kernel(None)
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert kernel_preference() == "numpy"
        assert select_kernel() is NumpyKernel
        monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
        assert kernel_preference() == "auto"

    def test_set_default_kernel_returns_previous(self, restore_kernel_preference):
        first = set_default_kernel("numpy")
        assert set_default_kernel("auto") == "numpy"
        assert set_default_kernel(first) == "auto"

    def test_set_default_kernel_rejects_unknown(self):
        with pytest.raises(KernelUnavailableError):
            set_default_kernel("vulkan")

    @pytest.mark.skipif(numba_installed(), reason="needs a numba-free host")
    def test_strict_set_default_raises_for_unavailable(self):
        with pytest.raises(KernelUnavailableError, match="accel"):
            set_default_kernel("numba", strict=True)

    def test_selection_flags_surface_in_metrics(
        self, built_index, monkeypatch, restore_kernel_preference
    ):
        monkeypatch.setattr(NumbaKernel, "available", classmethod(lambda cls: True))

        def boom(self, data):
            raise RuntimeError("synthetic compile failure")

        monkeypatch.setattr(NumbaKernel, "__init__", boom)
        set_default_kernel("numba")
        index = PrunedLandmarkLabeling().build(barabasi_albert_graph(150, 3, seed=5))
        engine = BatchQueryEngine(index)
        stats = index_health_stats(engine)
        assert stats["kernel_fallback"] == 1
        assert stats["kernel_requested"] == "numba"
        assert stats["kernel_name"] in ("numpy", "narrow")
        text = render_prometheus_text(stats)
        assert "repro_pll_kernel_fallback 1" in text
        assert 'requested="numba"' in text

    def test_healthy_selection_reports_no_fallback(self, built_index):
        stats = index_health_stats(BatchQueryEngine(built_index))
        assert stats["kernel_fallback"] == 0
        assert "repro_pll_kernel_fallback 0" in render_prometheus_text(stats)


# ---------------------------------------------------------------------------
# Byte-identity across backends
# ---------------------------------------------------------------------------


class TestByteIdentity:
    @pytest.fixture
    def pairs(self, built_index):
        rng = np.random.default_rng(3)
        n = built_index.label_set.num_vertices
        return rng.integers(0, n, size=(600, 2))

    def _clones(self, index):
        base = index.prepare_batch_kernel()
        clones = {"numpy": base.using("numpy")}
        for name in ("narrow", "numba"):
            clone = base.using(name)
            if clone.backend_name == name and not clone.selection.fallback:
                clones[name] = clone
        return clones

    def test_query_pairs_byte_identical(self, built_index, pairs):
        clones = self._clones(built_index)
        assert "narrow" in clones  # the fixture index is narrow-eligible
        reference = clones["numpy"].query_pairs(pairs[:, 0], pairs[:, 1]).tobytes()
        for name, clone in clones.items():
            assert clone.query_pairs(pairs[:, 0], pairs[:, 1]).tobytes() == reference, name

    def test_one_to_many_byte_identical(self, built_index):
        clones = self._clones(built_index)
        n = built_index.label_set.num_vertices
        subset = np.asarray([0, 5, n - 1, 17, 5], dtype=np.int64)
        for source in (0, n // 2, n - 1):
            full_ref = clones["numpy"].query_one_to_many(source).tobytes()
            sub_ref = clones["numpy"].query_one_to_many(source, subset).tobytes()
            for name, clone in clones.items():
                assert clone.query_one_to_many(source).tobytes() == full_ref, name
                assert clone.query_one_to_many(source, subset).tobytes() == sub_ref, name

    def test_one_to_many_matches_scalar_label_queries(self, built_index):
        # The wire-level contract: one-to-many through the engine equals the
        # scalar per-pair path bit for bit (zeroing and bp fold included).
        engine = BatchQueryEngine(built_index)
        n = built_index.label_set.num_vertices
        source = 3
        batch = engine.query_one_to_many(source)
        scalar = np.asarray(
            [built_index.distance(source, t) for t in range(n)], dtype=np.float64
        )
        assert batch.tobytes() == scalar.tobytes()

    def test_unjitted_numba_loops_match_numpy(self, built_index, pairs):
        # Without numba the loop functions run under the plain interpreter;
        # the merge logic must still match the numpy kernel bit for bit.
        base = built_index.prepare_batch_kernel().using("numpy")
        data = base._impl.data
        sources = np.ascontiguousarray(pairs[:64, 0])
        targets = np.ascontiguousarray(pairs[:64, 1])
        out = np.empty(sources.shape[0], dtype=np.int64)
        _query_pairs_loop(data.indptr, data.hub_ranks, data.dists, sources, targets, out)
        looped = np.full(out.shape[0], np.inf, dtype=np.float64)
        found = out < _JIT_NO_HUB
        looped[found] = out[found].astype(np.float64)
        expected = base.query_pairs(sources, targets)
        assert looped.tobytes() == expected.tobytes()

        source = int(sources[0])
        s0, s1 = data.indptr[source], data.indptr[source + 1]
        temp = np.full(data.num_vertices, _JIT_NO_HUB, dtype=np.int64)
        temp[data.hub_ranks[s0:s1]] = data.dists[s0:s1]
        target_ids = np.arange(data.num_vertices, dtype=np.int64)
        out = np.empty(target_ids.shape[0], dtype=np.int64)
        _one_to_many_loop(data.indptr, data.hub_ranks, data.dists, temp, target_ids, out)
        looped = np.full(out.shape[0], np.inf, dtype=np.float64)
        found = out < _JIT_NO_HUB
        looped[found] = out[found].astype(np.float64)
        assert looped.tobytes() == base.query_one_to_many(source).tobytes()

    def test_rooted_probe_loop_matches_numpy(self):
        rng = np.random.default_rng(9)
        num_segments, num_ranks = 40, 25
        sizes = rng.integers(0, 6, size=num_segments).astype(np.int64)
        total = int(sizes.sum())
        starts = np.zeros(num_segments, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        flat_hubs = rng.integers(0, num_ranks, size=total).astype(np.int64)
        # Rank-sorted within each segment, as the dynamic oracle guarantees.
        for p in range(num_segments):
            seg = slice(starts[p], starts[p] + sizes[p])
            flat_hubs[seg] = np.sort(flat_hubs[seg])
        flat_dists = rng.integers(0, 30, size=total).astype(np.int64)
        sentinel = int(_JIT_NO_HUB)
        temp = np.full(num_ranks, sentinel, dtype=np.int64)
        temp[rng.integers(0, num_ranks, size=10)] = rng.integers(0, 20, size=10)
        for max_rank in (0, num_ranks // 2, num_ranks - 1):
            expected = NumpyKernel.rooted_probe(
                flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel
            )
            out = np.empty(num_segments, dtype=np.int64)
            _rooted_probe_loop(
                flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel, out
            )
            assert out.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# Layout metadata: publish, attach, reload
# ---------------------------------------------------------------------------


class TestLayoutMetadata:
    def test_sharded_attach_adopts_published_plan(self, small_social_graph):
        manager = SnapshotManager.from_graph(small_social_graph, shared=True)
        try:
            published = manager.current.engine.index
            plan = published.prepare_batch_kernel().plan
            backend = manager.current.generation.backend
            if plan.narrow:
                stored = set(backend.fields())
                assert set(NARROW_FIELDS) <= stored
            attached = index_from_backend(backend)
            attached_plan = attached.prepare_batch_kernel().plan
            # The worker adopts the publisher's dtype decision from the layout
            # metadata rather than re-measuring the index.
            assert attached_plan == plan
            rng = np.random.default_rng(4)
            n = small_social_graph.num_vertices
            pairs = rng.integers(0, n, size=(200, 2))
            assert (
                attached.distance_batch(pairs[:, 0], pairs[:, 1]).tobytes()
                == published.distance_batch(pairs[:, 0], pairs[:, 1]).tobytes()
            )
        finally:
            manager.close()

    def test_raw_round_trip_preserves_plan(self, tmp_path, built_index):
        path = tmp_path / "index.pll"
        save_index(built_index, path)
        loaded = load_index(path)
        original = built_index.prepare_batch_kernel()
        restored = loaded.prepare_batch_kernel()
        assert restored.plan == original.plan
        if original.plan.narrow:
            assert set(restored.narrow_fields()) == set(NARROW_FIELDS)
        rng = np.random.default_rng(6)
        n = built_index.label_set.num_vertices
        pairs = rng.integers(0, n, size=(200, 2))
        assert (
            loaded.distance_batch(pairs[:, 0], pairs[:, 1]).tobytes()
            == built_index.distance_batch(pairs[:, 0], pairs[:, 1]).tobytes()
        )

    def test_wide_plan_round_trips_too(self, tmp_path):
        index = _long_path_index(280)
        path = tmp_path / "wide.pll"
        save_index(index, path)
        loaded = load_index(path)
        assert not loaded.prepare_batch_kernel().plan.narrow
        assert loaded.distance(0, 279) == 279.0

    def test_narrow_clone_shares_label_arrays(self, built_index):
        base = built_index.prepare_batch_kernel()
        clone = base.using("narrow")
        assert clone._impl.data.indptr is base._impl.data.indptr
        assert clone._impl.data.keys is base._impl.data.keys

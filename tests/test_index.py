"""Unit tests for the public PrunedLandmarkLabeling facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling, build_index
from repro.errors import IndexStateError
from repro.graph.csr import Graph
from tests.conftest import exact_distances, sample_pairs


class TestLifecycle:
    def test_unbuilt_index_raises(self):
        index = PrunedLandmarkLabeling()
        assert not index.built
        with pytest.raises(IndexStateError):
            index.distance(0, 1)
        with pytest.raises(IndexStateError):
            index.average_label_size()

    def test_build_returns_self(self, small_social_graph):
        index = PrunedLandmarkLabeling()
        assert index.build(small_social_graph) is index
        assert index.built

    def test_build_index_convenience(self, small_social_graph):
        index = build_index(small_social_graph, num_bit_parallel_roots=2)
        assert index.built
        assert index.bit_parallel_labels.num_roots == 2

    def test_explicit_order_override(self, small_social_graph):
        n = small_social_graph.num_vertices
        order = np.arange(n)[::-1]
        index = PrunedLandmarkLabeling().build(small_social_graph, order=order)
        assert np.array_equal(index.order, order)


class TestExactness:
    @pytest.mark.parametrize("num_bp", [0, 1, 8])
    def test_distance_matches_apsp(self, medium_social_graph, num_bp):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(
            medium_social_graph
        )
        truth = exact_distances(medium_social_graph)
        for s, t in sample_pairs(medium_social_graph, 300, seed=num_bp):
            assert index.distance(s, t) == truth[s, t]

    def test_self_distance_zero(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.distance(7, 7) == 0.0

    def test_disconnected_pairs_are_inf(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        assert index.distance(0, 3) == float("inf")
        assert index.distance(5, 1) == float("inf")
        assert not index.connected(0, 3)
        assert index.connected(0, 2)

    def test_batch_distances(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        pairs = sample_pairs(small_social_graph, 50, seed=1)
        batch = index.distances(pairs)
        singles = [index.distance(s, t) for s, t in pairs]
        assert list(batch) == singles

    def test_query_alias(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.query(0, 5) == index.distance(0, 5)

    @pytest.mark.parametrize("ordering", ["degree", "closeness", "random"])
    def test_all_orderings_exact(self, small_social_graph, ordering):
        index = PrunedLandmarkLabeling(ordering=ordering, seed=3).build(
            small_social_graph
        )
        truth = exact_distances(small_social_graph)
        for s, t in sample_pairs(small_social_graph, 150, seed=5):
            assert index.distance(s, t) == truth[s, t]

    def test_single_vertex_graph(self):
        index = PrunedLandmarkLabeling().build(Graph(1, []))
        assert index.distance(0, 0) == 0.0

    def test_empty_graph(self):
        index = PrunedLandmarkLabeling().build(Graph(0, []))
        assert index.average_label_size() == 0.0


class TestCoveringRank:
    def test_same_vertex_is_zero(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.covering_rank(3, 3) == 0

    def test_disconnected_is_none(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        assert index.covering_rank(0, 3) is None

    def test_rank_prefix_answers_exactly(self, medium_social_graph):
        """Labels restricted to ranks below the covering rank answer exactly;
        one fewer rank does not."""
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            medium_social_graph
        )
        labels = index.label_set
        truth = exact_distances(medium_social_graph)

        def prefix_query(s, t, max_rank_exclusive):
            s_hubs, s_dists = labels.vertex_label(s)
            t_hubs, t_dists = labels.vertex_label(t)
            s_keep = s_hubs < max_rank_exclusive
            t_keep = t_hubs < max_rank_exclusive
            common, si, ti = np.intersect1d(
                s_hubs[s_keep], t_hubs[t_keep], assume_unique=True, return_indices=True
            )
            if common.shape[0] == 0:
                return float("inf")
            return float(
                (
                    s_dists[s_keep][si].astype(int)
                    + t_dists[t_keep][ti].astype(int)
                ).min()
            )

        checked = 0
        for s, t in sample_pairs(medium_social_graph, 60, seed=9):
            if s == t:
                continue
            step = index.covering_rank(s, t)
            if step is None:
                continue
            assert prefix_query(s, t, step) == truth[s, t]
            if step > 1:
                assert prefix_query(s, t, step - 1) > truth[s, t]
            checked += 1
        assert checked > 20


class TestIntrospection:
    def test_label_of(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        entries = index.label_of(10)
        assert entries
        # Entries are (hub vertex, distance) pairs; the vertex itself appears at 0.
        assert (10, 0) in entries

    def test_index_size_accounts_for_bit_parallel(self, small_social_graph):
        plain = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            small_social_graph
        )
        with_bp = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(
            small_social_graph
        )
        assert with_bp.bit_parallel_labels.nbytes() > 0
        assert with_bp.index_size_bytes() > with_bp.label_set.nbytes()
        assert plain.index_size_bytes() == plain.label_set.nbytes()

    def test_average_label_size_positive(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.average_label_size() >= 1.0

    def test_graph_property(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.graph is small_social_graph

    def test_construction_stats_exposed(self, small_social_graph):
        index = PrunedLandmarkLabeling(collect_stats=True).build(small_social_graph)
        assert index.construction_stats.labeled_per_bfs.sum() == (
            index.label_set.total_entries()
        )


class TestVertexValidation:
    """Regression: ``distance(-1, 0)`` used to return ``inf`` (numpy's
    end-relative indexing produced a nonsense label view) instead of raising,
    masking caller bugs; ``repro-pll query`` already rejected the same ids."""

    def test_distance_rejects_negative_ids(self, small_social_graph):
        from repro.errors import VertexError

        index = PrunedLandmarkLabeling().build(small_social_graph)
        with pytest.raises(VertexError):
            index.distance(-1, 0)
        with pytest.raises(VertexError):
            index.distance(0, -1)

    def test_distance_rejects_too_large_ids(self, small_social_graph):
        from repro.errors import VertexError

        index = PrunedLandmarkLabeling().build(small_social_graph)
        n = small_social_graph.num_vertices
        with pytest.raises(VertexError):
            index.distance(0, n)
        with pytest.raises(VertexError):
            index.distance(n + 7, 0)

    def test_distance_batch_rejects_negative_ids(self, small_social_graph):
        from repro.errors import VertexError

        index = PrunedLandmarkLabeling().build(small_social_graph)
        with pytest.raises(VertexError):
            index.distance_batch([0, -1], [1, 1])

    def test_validation_aligns_with_batch_path(self, small_social_graph):
        """Scalar and batch queries reject exactly the same ids."""
        from repro.errors import VertexError

        index = PrunedLandmarkLabeling().build(small_social_graph)
        n = small_social_graph.num_vertices
        for s, t in [(-1, 0), (0, n), (-5, -5)]:
            with pytest.raises(VertexError):
                index.distance(s, t)
            with pytest.raises(VertexError):
                index.distance_batch([s], [t])

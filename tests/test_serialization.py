"""Tests for index serialization (save_index / load_index)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.core.serialization import (
    FORMAT_VERSION,
    load_index,
    load_index_metadata,
    save_index,
)
from repro.errors import SerializationError
from tests.conftest import sample_pairs


class TestSaveLoad:
    def test_roundtrip_distances(self, tmp_path, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)

        pairs = sample_pairs(medium_social_graph, 200, seed=0)
        assert np.array_equal(index.distances(pairs), loaded.distances(pairs))

    def test_roundtrip_without_bit_parallel(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            small_social_graph
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        pairs = sample_pairs(small_social_graph, 100, seed=1)
        assert np.array_equal(index.distances(pairs), loaded.distances(pairs))

    def test_loaded_index_has_no_graph(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.graph is None
        assert loaded.built

    def test_metadata_preserved(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling(
            ordering="closeness", num_bit_parallel_roots=2
        ).build(small_social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.ordering == "closeness"
        assert loaded.num_bit_parallel_roots == 2
        assert loaded.bit_parallel_labels.num_roots == 2
        assert loaded.average_label_size() == index.average_label_size()

    def test_root_sets_roundtrip(self, tmp_path, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=3).build(
            medium_social_graph
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.bit_parallel_labels.root_sets == index.bit_parallel_labels.root_sets
        assert np.array_equal(
            loaded.bit_parallel_labels.roots, index.bit_parallel_labels.roots
        )


class TestRawLayout:
    def test_raw_roundtrip_distances(self, tmp_path, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        path = tmp_path / "index.pll"
        save_index(index, path)
        loaded = load_index(path)
        pairs = sample_pairs(medium_social_graph, 200, seed=2)
        assert np.array_equal(index.distances(pairs), loaded.distances(pairs))

    def test_mmap_load_is_read_only_and_exact(self, tmp_path, medium_social_graph):
        """``load_index(mmap=True)`` hands out read-only zero-copy views that
        still answer batch queries bit-identically to scalar ones."""
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        path = tmp_path / "index.pll"
        save_index(index, path)
        mapped = load_index(path, mmap=True)

        labels = mapped.label_set
        for array in (labels.indptr, labels.hub_ranks, labels.distances, labels.order):
            assert not array.flags.writeable
        bp = mapped.bit_parallel_labels
        for array in (bp.dist, bp.s_minus, bp.s_zero):
            assert not array.flags.writeable

        pairs = sample_pairs(medium_social_graph, 300, seed=5)
        batched = mapped.distances(pairs)
        scalar = [mapped.distance(s, t) for s, t in pairs]
        assert np.array_equal(batched, np.asarray(scalar))
        assert np.array_equal(batched, index.distances(pairs))

    def test_mmap_load_rejects_npz(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        with pytest.raises(SerializationError, match="memory-mapped"):
            load_index(path, mmap=True)

    def test_raw_metadata(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            small_social_graph
        )
        path = tmp_path / "index.pll"
        save_index(index, path)
        metadata = load_index_metadata(path)
        assert metadata["format_version"] == FORMAT_VERSION
        assert metadata["num_vertices"] == small_social_graph.num_vertices
        assert metadata["num_bit_parallel_roots"] == 2


class TestMetadata:
    def test_load_index_metadata(self, tmp_path, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            small_social_graph
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        metadata = load_index_metadata(path)
        assert metadata["format_version"] == FORMAT_VERSION
        assert metadata["num_vertices"] == small_social_graph.num_vertices
        assert metadata["num_bit_parallel_roots"] == 2
        assert metadata["ordering"] == "degree"

    def test_load_index_metadata_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index_metadata(tmp_path / "missing.npz")


class TestErrors:
    def test_save_unbuilt_index(self, tmp_path):
        with pytest.raises(SerializationError):
            save_index(PrunedLandmarkLabeling(), tmp_path / "x.npz")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index(tmp_path / "does_not_exist.npz")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(SerializationError):
            load_index(path)

    def test_format_version_constant(self):
        assert FORMAT_VERSION >= 1

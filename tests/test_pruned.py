"""Unit tests for the pruned-BFS label construction (paper Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitparallel import build_bit_parallel_labels
from repro.core.pruned import build_naive_labels, build_pruned_labels
from repro.errors import IndexBuildError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order, degree_order
from tests.conftest import exact_distances, random_test_graphs


class TestBuildPrunedLabels:
    def test_exactness_on_path(self, path_graph):
        order = degree_order(path_graph)
        labels, _ = build_pruned_labels(path_graph, order)
        truth = exact_distances(path_graph)
        for s in range(5):
            for t in range(5):
                assert labels.query(s, t) == truth[s, t]

    def test_exactness_on_random_graphs(self):
        for graph in random_test_graphs(4, seed=21):
            order = degree_order(graph)
            labels, _ = build_pruned_labels(graph, order)
            truth = exact_distances(graph)
            rng = np.random.default_rng(0)
            for _ in range(150):
                s = int(rng.integers(0, graph.num_vertices))
                t = int(rng.integers(0, graph.num_vertices))
                assert labels.query(s, t) == truth[s, t]

    def test_requires_permutation(self, path_graph):
        with pytest.raises(IndexBuildError):
            build_pruned_labels(path_graph, np.array([0, 0, 1, 2, 3]))

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            build_pruned_labels(graph, np.arange(3))

    def test_labels_sorted_by_rank(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        labels, _ = build_pruned_labels(medium_social_graph, order)
        for v in range(labels.num_vertices):
            hubs, _ = labels.vertex_label(v)
            assert np.all(np.diff(hubs) > 0)

    def test_every_vertex_labels_itself(self, medium_social_graph):
        """Without bit-parallel labels every vertex carries its own (rank, 0) entry."""
        order = degree_order(medium_social_graph)
        labels, _ = build_pruned_labels(medium_social_graph, order)
        rank = labels.rank
        for v in range(labels.num_vertices):
            hubs, dists = labels.vertex_label(v)
            position = np.searchsorted(hubs, rank[v])
            assert position < hubs.shape[0] and hubs[position] == rank[v]
            assert dists[position] == 0

    def test_pruning_reduces_label_entries(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        pruned, _ = build_pruned_labels(medium_social_graph, order)
        naive, _ = build_naive_labels(medium_social_graph, order)
        assert pruned.total_entries() < 0.5 * naive.total_entries()

    def test_minimality(self):
        """Theorem 4.2: removing any single label entry breaks some query."""
        graph = Graph(
            8,
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 5), (4, 5), (5, 6), (6, 7)],
        )
        order = degree_order(graph)
        labels, _ = build_pruned_labels(graph, order)
        truth = exact_distances(graph)

        for vertex in range(graph.num_vertices):
            hubs, dists = labels.vertex_label(vertex)
            for drop_index in range(hubs.shape[0]):
                kept = [i for i in range(hubs.shape[0]) if i != drop_index]
                reduced_hubs = hubs[kept]
                reduced_dists = dists[kept]

                def reduced_query(s, t):
                    if s == vertex:
                        s_hubs, s_dists = reduced_hubs, reduced_dists
                    else:
                        s_hubs, s_dists = labels.vertex_label(s)
                    if t == vertex:
                        t_hubs, t_dists = reduced_hubs, reduced_dists
                    else:
                        t_hubs, t_dists = labels.vertex_label(t)
                    common, si, ti = np.intersect1d(
                        s_hubs, t_hubs, assume_unique=True, return_indices=True
                    )
                    if common.shape[0] == 0:
                        return float("inf")
                    return float(
                        (s_dists[si].astype(int) + t_dists[ti].astype(int)).min()
                    )

                broken = False
                for other in range(graph.num_vertices):
                    for s, t in ((vertex, other), (other, vertex)):
                        if reduced_query(s, t) != truth[s, t]:
                            broken = True
                            break
                    if broken:
                        break
                assert broken, (
                    f"dropping entry {drop_index} of vertex {vertex} did not break "
                    "any query: the index is not minimal"
                )

    def test_with_bit_parallel_still_exact(self):
        for graph in random_test_graphs(3, seed=33):
            order = degree_order(graph)
            bp = build_bit_parallel_labels(graph, order, 3)
            labels, _ = build_pruned_labels(graph, order, bit_parallel=bp)
            truth = exact_distances(graph)
            rng = np.random.default_rng(3)
            for _ in range(100):
                s = int(rng.integers(0, graph.num_vertices))
                t = int(rng.integers(0, graph.num_vertices))
                combined = min(labels.query(s, t), bp.query(s, t))
                if s == t:
                    combined = 0.0
                assert combined == truth[s, t]

    def test_bit_parallel_shrinks_normal_labels(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        plain, _ = build_pruned_labels(medium_social_graph, order)
        bp = build_bit_parallel_labels(medium_social_graph, order, 8)
        with_bp, _ = build_pruned_labels(medium_social_graph, order, bit_parallel=bp)
        assert with_bp.total_entries() < plain.total_entries()

    def test_construction_stats(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        labels, stats = build_pruned_labels(
            medium_social_graph, order, collect_stats=True
        )
        n = medium_social_graph.num_vertices
        assert stats.labeled_per_bfs.shape[0] == n
        assert stats.visited_per_bfs.shape[0] == n
        assert stats.labeled_per_bfs.sum() == labels.total_entries()
        assert np.all(stats.pruned_per_bfs >= 0)
        assert np.all(stats.visited_per_bfs >= stats.labeled_per_bfs)
        # The first BFS (from the top-degree hub) visits the whole component
        # and labels everything it visits.
        assert stats.pruned_per_bfs[0] == 0
        cumulative = stats.cumulative_labeled_fraction()
        assert np.isclose(cumulative[-1], 1.0)
        assert stats.elapsed_seconds > 0

    def test_stats_disabled_by_default(self, small_social_graph):
        order = degree_order(small_social_graph)
        _, stats = build_pruned_labels(small_social_graph, order)
        assert stats.labeled_per_bfs.shape[0] == 0


class TestBuildNaiveLabels:
    def test_naive_label_sizes_are_component_sizes(self, disconnected_graph):
        order = compute_order(disconnected_graph, "degree")
        labels, _ = build_naive_labels(disconnected_graph, order)
        # Each vertex is labelled by every vertex of its own component.
        assert labels.label_size(0) == 3
        assert labels.label_size(3) == 2
        assert labels.label_size(5) == 1

    def test_naive_exactness(self, small_social_graph):
        order = degree_order(small_social_graph)
        labels, _ = build_naive_labels(small_social_graph, order)
        truth = exact_distances(small_social_graph)
        rng = np.random.default_rng(4)
        for _ in range(100):
            s = int(rng.integers(0, small_social_graph.num_vertices))
            t = int(rng.integers(0, small_social_graph.num_vertices))
            assert labels.query(s, t) == truth[s, t]

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            build_naive_labels(graph, np.arange(3))

    def test_requires_permutation(self, path_graph):
        with pytest.raises(IndexBuildError):
            build_naive_labels(path_graph, np.array([4, 3, 2, 1]))

"""Tests for the batched query engine and the vectorised batch kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.core.query import BatchQueryKernel
from repro.errors import VertexError
from repro.graph.csr import Graph
from repro.serving import BatchQueryEngine
from tests.conftest import random_test_graphs


def scalar_reference(index, sources, targets):
    return np.array(
        [index.distance(int(s), int(t)) for s, t in zip(sources, targets)],
        dtype=np.float64,
    )


class TestDistanceBatch:
    @pytest.mark.parametrize("num_bp", [0, 3])
    def test_matches_scalar_on_random_graphs(self, num_bp):
        rng = np.random.default_rng(7)
        for graph in random_test_graphs(4, seed=23):
            index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(graph)
            n = graph.num_vertices
            sources = rng.integers(0, n, size=300)
            targets = rng.integers(0, n, size=300)
            batch = index.distance_batch(sources, targets)
            assert np.array_equal(batch, scalar_reference(index, sources, targets))

    def test_property_random_sparse_graphs(self):
        # Includes disconnected graphs and graphs with empty labels.
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(3, 40))
            edges = [
                (int(rng.integers(0, n)), int(rng.integers(0, n)))
                for _ in range(int(rng.integers(0, 2 * n)))
            ]
            graph = Graph(n, edges)
            index = PrunedLandmarkLabeling(
                num_bit_parallel_roots=int(rng.integers(0, 3))
            ).build(graph)
            sources = rng.integers(0, n, size=120)
            targets = rng.integers(0, n, size=120)
            batch = index.distance_batch(sources, targets)
            assert np.array_equal(batch, scalar_reference(index, sources, targets))

    def test_self_pairs_are_zero(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        result = index.distance_batch([3, 5, 0], [3, 5, 0])
        assert np.array_equal(result, np.zeros(3))

    def test_disconnected_pairs_are_inf(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        result = index.distance_batch([0, 0, 3], [3, 5, 5])
        assert np.all(np.isinf(result))

    def test_out_of_range_raises_vertex_error(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        n = small_social_graph.num_vertices
        with pytest.raises(VertexError):
            index.distance_batch([0], [n])
        with pytest.raises(VertexError):
            index.distance_batch([-1], [0])

    def test_empty_batch(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.distance_batch([], []).shape == (0,)
        assert index.distances([]).shape == (0,)

    def test_chunking_does_not_change_results(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            medium_social_graph
        )
        rng = np.random.default_rng(3)
        n = medium_social_graph.num_vertices
        sources = rng.integers(0, n, size=500)
        targets = rng.integers(0, n, size=500)
        whole = index.distance_batch(sources, targets)
        chunked = index.distance_batch(sources, targets, chunk_size=64)
        assert np.array_equal(whole, chunked)

    def test_distances_routes_through_batch_path(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        pairs = [(0, 5), (3, 7), (2, 2)]
        expected = scalar_reference(index, [0, 3, 2], [5, 7, 2])
        assert np.array_equal(index.distances(pairs), expected)


class TestBatchQueryKernel:
    def test_matches_label_set_query(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            medium_social_graph
        )
        kernel = BatchQueryKernel(index.label_set)
        rng = np.random.default_rng(11)
        n = medium_social_graph.num_vertices
        sources = rng.integers(0, n, size=200)
        targets = rng.integers(0, n, size=200)
        got = kernel.query_pairs(sources, targets)
        expected = np.array(
            [index.label_set.query(int(s), int(t)) for s, t in zip(sources, targets)]
        )
        assert np.array_equal(got, expected)

    def test_length_mismatch_rejected(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        kernel = BatchQueryKernel(index.label_set)
        with pytest.raises(ValueError):
            kernel.query_pairs(np.array([0, 1]), np.array([2]))


class TestBatchQueryEngine:
    def test_requires_built_index(self):
        with pytest.raises(ValueError):
            BatchQueryEngine(PrunedLandmarkLabeling())

    def test_query_and_stats_accounting(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        engine = BatchQueryEngine(index)
        result = engine.query_batch([0, 1, 2], [5, 6, 7])
        assert result.shape == (3,)
        assert engine.query(0, 5) == index.distance(0, 5)
        stats = engine.stats
        assert stats.num_batches == 2
        assert stats.num_queries == 4
        assert stats.total_seconds > 0.0
        assert stats.queries_per_second > 0.0
        assert stats.as_dict()["average_batch_size"] == 2.0

    def test_query_pairs_helper(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        engine = BatchQueryEngine(index)
        pairs = [(0, 5), (1, 6)]
        assert np.array_equal(engine.query_pairs(pairs), index.distances(pairs))
        assert engine.query_pairs([]).shape == (0,)

    def test_matches_scalar_with_bit_parallel(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        engine = BatchQueryEngine(index)
        rng = np.random.default_rng(5)
        n = medium_social_graph.num_vertices
        sources = rng.integers(0, n, size=400)
        targets = rng.integers(0, n, size=400)
        assert np.array_equal(
            engine.query_batch(sources, targets),
            scalar_reference(index, sources, targets),
        )

    def test_one_to_many_matches_scalar(self, medium_social_graph):
        # The previously wire-unreachable one-to-many verb, now routed through
        # the engine: equal to per-pair scalar queries bit for bit.
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        engine = BatchQueryEngine(index)
        n = medium_social_graph.num_vertices
        source = 7
        full = engine.query_one_to_many(source)
        assert full.shape == (n,)
        assert np.array_equal(full, scalar_reference(index, [source] * n, range(n)))
        subset = [0, n - 1, 42, 42]
        assert np.array_equal(
            engine.query_one_to_many(source, subset),
            scalar_reference(index, [source] * len(subset), subset),
        )

    def test_one_to_many_accounting_and_validation(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        engine = BatchQueryEngine(index)
        spans = []
        result = engine.query_one_to_many(0, [1, 2, 3], span_sink=spans)
        assert result.shape == (3,)
        assert engine.stats.num_queries == 3
        assert [span.name for span in spans] == ["kernel"]
        with pytest.raises(VertexError):
            engine.query_one_to_many(index.label_set.num_vertices)
        with pytest.raises(VertexError):
            engine.query_one_to_many(0, [-1])

"""Tests for multi-process sharded serving over shared-memory generations."""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.errors import ServingError, VertexError
from repro.graph.csr import Graph
from repro.serving import (
    LRUCache,
    QueryServer,
    ServerMetrics,
    ShardedQueryEngine,
    SnapshotManager,
)
from tests.conftest import sample_pairs

#: Pool/shard settings that force even tiny test batches through the workers.
WORKER_KWARGS = dict(num_workers=2, min_shard_size=4, local_threshold=0)


def _segment_names(prefix: str):
    shm = Path("/dev/shm")
    if not shm.exists():
        pytest.skip("no /dev/shm on this platform")
    return sorted(p.name for p in shm.iterdir() if p.name.startswith(prefix))


class TestShardedEngine:
    def test_matches_single_process_engine(self, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            small_social_graph
        )
        pairs = np.asarray(
            sample_pairs(small_social_graph, 300, seed=3), dtype=np.int64
        )
        # Include identical endpoints (the s == t short-circuit crosses the
        # process boundary too).
        pairs[:10, 1] = pairs[:10, 0]
        expected = index.distance_batch(pairs[:, 0], pairs[:, 1])
        with ShardedQueryEngine(index, **WORKER_KWARGS) as engine:
            result = engine.query_batch(pairs[:, 0], pairs[:, 1])
            assert np.array_equal(result, expected)
            assert engine.stats.num_queries == pairs.shape[0]
            # Both workers participated in the fan-out.
            assert len(engine.worker_seconds()) == 2

    def test_disconnected_pairs_cross_processes(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        with ShardedQueryEngine(index, **WORKER_KWARGS) as engine:
            result = engine.query_batch([0, 3, 5, 0], [1, 4, 0, 4])
            assert np.array_equal(result, [1.0, 1.0, np.inf, np.inf])

    def test_validates_vertex_ids(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        with ShardedQueryEngine(index, **WORKER_KWARGS) as engine:
            with pytest.raises(VertexError):
                engine.query_batch([0], [small_social_graph.num_vertices])
            with pytest.raises(VertexError):
                engine.query_batch([-1], [0])

    def test_requires_shared_manager(self, small_social_graph):
        manager = SnapshotManager.from_graph(small_social_graph)
        with pytest.raises(ServingError):
            ShardedQueryEngine(manager, **WORKER_KWARGS)

    def test_closed_engine_rejects_queries(self, path_graph):
        engine = ShardedQueryEngine(
            PrunedLandmarkLabeling().build(path_graph), **WORKER_KWARGS
        )
        engine.close()
        with pytest.raises(ServingError):
            engine.query_batch([0], [1])
        engine.close()  # idempotent


class TestWorkerRespawn:
    def test_dead_worker_respawns_and_batch_succeeds(self, small_social_graph):
        """SIGKILLing a worker breaks the pool; the next batch must rebuild
        it, re-attach the generation, and still answer correctly."""
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            small_social_graph
        )
        metrics = ServerMetrics()
        pairs = np.asarray(
            sample_pairs(small_social_graph, 200, seed=11), dtype=np.int64
        )
        expected = index.distance_batch(pairs[:, 0], pairs[:, 1])
        with ShardedQueryEngine(index, metrics=metrics, **WORKER_KWARGS) as engine:
            before = engine.ping()
            assert len(before) == 2
            assert np.array_equal(
                engine.query_batch(pairs[:, 0], pairs[:, 1]), expected
            )
            os.kill(before[0], signal.SIGKILL)
            # The engine heals within the same call: pool rebuilt, fresh
            # workers attach the generation by name, the batch retries.
            result = engine.query_batch(pairs[:, 0], pairs[:, 1])
            assert np.array_equal(result, expected)
            assert engine.num_respawns == 1
            after = engine.ping()
            assert len(after) == 2
            assert before[0] not in after
        stats = metrics.snapshot()
        assert stats["num_worker_respawns"] == 1

    def test_ping_alone_heals_a_broken_pool(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        with ShardedQueryEngine(index, **WORKER_KWARGS) as engine:
            victims = engine.ping()
            for pid in victims:
                os.kill(pid, signal.SIGKILL)
            healed = engine.ping()
            assert len(healed) == 2
            assert not set(victims) & set(healed)
            assert engine.num_respawns == 1
            # And the healed pool serves.
            assert engine.query_batch([0, 1], [5, 6]).shape == (2,)

    def test_ping_rejected_after_close(self, path_graph):
        engine = ShardedQueryEngine(
            PrunedLandmarkLabeling().build(path_graph), **WORKER_KWARGS
        )
        engine.close()
        with pytest.raises(ServingError):
            engine.ping()


class TestPublishWhileQuerying:
    def test_workers_never_observe_torn_snapshots(self):
        """Concurrent publishes vs cross-process batches: every batch must be
        internally consistent with exactly one published graph version."""
        chain = [(i, i + 1) for i in range(7)]
        with_edge = Graph(8, chain + [(0, 7)])
        without_edge = Graph(8, chain)
        pair_set = [(0, 7), (0, 6), (0, 5), (1, 7), (2, 7), (7, 0)]
        pairs = np.asarray(pair_set * 12, dtype=np.int64)
        expected_with = PrunedLandmarkLabeling().build(with_edge).distances(pairs)
        expected_without = (
            PrunedLandmarkLabeling().build(without_edge).distances(pairs)
        )
        assert not np.array_equal(expected_with, expected_without)

        manager = SnapshotManager.from_graph(with_edge, shared=True)
        engine = ShardedQueryEngine(manager, **WORKER_KWARGS)
        stop = threading.Event()
        publish_error = []

        def churn():
            present = True
            try:
                while not stop.is_set():
                    if present:
                        manager.remove_edge(0, 7)
                    else:
                        manager.insert_edge(0, 7)
                    present = not present
                    manager.publish()
                    time.sleep(0.002)
            except Exception as exc:  # pragma: no cover - surfaced below
                publish_error.append(exc)

        publisher = threading.Thread(target=churn)
        publisher.start()
        try:
            for _ in range(40):
                result = engine.query_batch(pairs[:, 0], pairs[:, 1])
                matches_with = np.array_equal(result, expected_with)
                matches_without = np.array_equal(result, expected_without)
                assert matches_with or matches_without, (
                    "batch mixed distances from different snapshot versions"
                )
        finally:
            stop.set()
            publisher.join(timeout=30)
            engine.close()
            manager.close()
        assert not publish_error, publish_error
        assert manager.version > 1

    def test_generation_unlinked_after_last_reader_detaches(self, path_graph):
        manager = SnapshotManager.from_graph(path_graph, shared=True)
        first = manager.current.generation
        assert first is not None
        assert _segment_names(first.name)
        # A reader pins the generation across a publish...
        assert first.acquire()
        manager.insert_edge(0, 4)
        manager.publish()
        assert first.retired
        assert not first.unlinked
        assert _segment_names(first.name), "generation vanished under a reader"
        # ...and the last detach reclaims it.
        first.release()
        assert first.unlinked
        assert _segment_names(first.name) == []
        manager.close()

    def test_no_segments_leak_across_publish_cycles(self, path_graph):
        manager = SnapshotManager.from_graph(path_graph, shared=True)
        engine = ShardedQueryEngine(manager, **WORKER_KWARGS)
        generation_names = [manager.current.generation.name]
        try:
            for round_number in range(4):
                manager.insert_edge(0, 2 + round_number % 3)
                manager.publish()
                generation_names.append(manager.current.generation.name)
                engine.query_batch([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])
                # Only the current generation may remain on disk.
                for name in generation_names[:-1]:
                    assert _segment_names(name) == []
                assert _segment_names(generation_names[-1])
        finally:
            engine.close()
            manager.close()
        for name in generation_names:
            assert _segment_names(name) == []


class TestServerIntegration:
    def test_query_server_over_sharded_engine(self, small_social_graph):
        manager = SnapshotManager.from_graph(small_social_graph, shared=True)
        metrics = ServerMetrics()
        engine = ShardedQueryEngine(manager, metrics=metrics, **WORKER_KWARGS)
        pairs = sample_pairs(small_social_graph, 200, seed=9)
        expected = manager.current.engine.query_pairs(pairs)
        try:
            with QueryServer(
                engine, cache=LRUCache(1024), metrics=metrics
            ) as server:
                assert server.snapshot_manager is manager
                result = server.distances(pairs)
                assert np.array_equal(result, expected)
                # Mutations flow through the sharded backend to the manager.
                server.insert_edge(0, small_social_graph.num_vertices - 1)
                server.publish()
                assert manager.version == 2
                assert (
                    server.distance(0, small_social_graph.num_vertices - 1) == 1.0
                )
                stats = server.metrics_snapshot()
                assert stats["num_workers"] >= 1
                assert stats["worker_busy_seconds_total"] > 0.0
        finally:
            engine.close()
            manager.close()

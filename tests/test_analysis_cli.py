"""CLI, baseline and reporter tests for reprolint.

Covers the baseline round-trip (``--write-baseline`` then re-lint), the JSON
report schema the tooling contract pins, exit codes, and the self-check: the
committed tree must lint clean with the committed baseline.
"""

from __future__ import annotations

import contextlib
import io
import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main
from repro.analysis.runner import check_source
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]

VIOLATION = """\
import numpy as np


def alloc(n):
    return np.zeros(n)
"""

SECOND_VIOLATION = """\
import numpy as np


def alloc2(n):
    return np.empty(n)
"""


def _run(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """A tiny project with one RL005 violation, cwd-relative like a checkout."""
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "alloc.py").write_text(VIOLATION, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


# ---------------------------------------------------------------------------
# Exit codes and basic CLI behaviour
# ---------------------------------------------------------------------------


def test_lint_reports_finding_and_exits_1(project):
    code, output = _run(["src"])
    assert code == EXIT_FINDINGS
    assert "RL005" in output
    assert "src/repro/core/alloc.py:5:" in output
    assert "1 new" in output


def test_unknown_rule_is_a_usage_error(project):
    code, output = _run(["src", "--select", "RL999"])
    assert code == EXIT_USAGE
    assert "unknown rule" in output


def test_select_scopes_the_run(project):
    code, _ = _run(["src", "--select", "RL001,RL004"])
    assert code == EXIT_OK


def test_list_rules_names_all_rules():
    code, output = _run(["--list-rules"])
    assert code == EXIT_OK
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
        assert rule_id in output


def test_unparsable_file_fails_the_run(project):
    (project / "src" / "repro" / "core" / "broken.py").write_text(
        "def broken(:\n", encoding="utf-8"
    )
    code, output = _run(["src"])
    assert code == EXIT_FINDINGS
    assert "cannot parse" in output


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------


def test_baseline_round_trip(project):
    # 1. Grandfather the existing violation.
    code, output = _run(["src", "--write-baseline"])
    assert code == EXIT_OK
    assert "wrote 1 finding(s)" in output
    baseline_path = project / "reprolint-baseline.json"
    assert baseline_path.exists()

    # 2. Re-lint: the finding is absorbed, the run is clean.
    code, output = _run(["src"])
    assert code == EXIT_OK
    assert "1 baselined" in output

    # 3. A *new* violation still fails even with the baseline in place.
    (project / "src" / "repro" / "core" / "alloc2.py").write_text(
        SECOND_VIOLATION, encoding="utf-8"
    )
    code, output = _run(["src"])
    assert code == EXIT_FINDINGS
    assert "1 new" in output and "1 baselined" in output

    # 4. --no-baseline reports everything as new again.
    code, output = _run(["src", "--no-baseline"])
    assert code == EXIT_FINDINGS
    assert "2 new" in output


def test_baseline_entry_absorbs_at_most_one_finding(project):
    findings = check_source(VIOLATION, "src/repro/core/alloc.py")
    assert len(findings) == 1
    fingerprints = load_baseline_from_findings(findings)
    # Two identical findings against one baseline entry: one is new.
    annotated, num_new = apply_baseline(findings * 2, fingerprints)
    assert num_new == 1
    assert [finding.baselined for finding in annotated] == [True, False]


def load_baseline_from_findings(findings):
    return Counter(finding.fingerprint for finding in findings)


def test_baseline_file_round_trips_on_disk(tmp_path):
    findings = check_source(VIOLATION, "src/repro/core/alloc.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    (entry,) = payload["findings"]
    assert set(entry) == {"rule", "path", "symbol", "message", "fingerprint"}
    assert load_baseline(path) == load_baseline_from_findings(findings)


def test_malformed_baseline_is_a_usage_error(project):
    (project / "reprolint-baseline.json").write_text("[]", encoding="utf-8")
    code, output = _run(["src"])
    assert code == EXIT_USAGE
    assert "unsupported structure" in output


def test_load_baseline_rejects_bad_entries(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 1, "findings": [{"rule": "RL005"}]}', encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# JSON reporter schema
# ---------------------------------------------------------------------------


def test_json_report_schema(project):
    code, output = _run(["src", "--format", "json"])
    assert code == EXIT_FINDINGS
    payload = json.loads(output)
    assert set(payload) == {"version", "ok", "summary", "rules", "findings", "errors"}
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert set(payload["summary"]) == {
        "files",
        "findings",
        "new",
        "baselined",
        "suppressed",
        "errors",
    }
    assert set(payload["rules"]) == {
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
        "RL008",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule",
        "path",
        "line",
        "col",
        "message",
        "symbol",
        "fingerprint",
        "baselined",
    }
    assert finding["rule"] == "RL005"
    assert finding["path"] == "src/repro/core/alloc.py"


# ---------------------------------------------------------------------------
# repro-pll integration and the self-check
# ---------------------------------------------------------------------------


def test_repro_pll_lint_subcommand(project):
    assert repro_main(["lint", "src"]) == EXIT_FINDINGS
    assert repro_main(["lint", "src", "--select", "RL001"]) == EXIT_OK


def test_committed_tree_lints_clean(monkeypatch):
    """`repro-pll lint src/` must exit 0 on the committed tree.

    The committed baseline is picked up from the repo root; any new finding
    in src/ fails this test exactly as it would fail CI.
    """
    monkeypatch.chdir(REPO_ROOT)
    code, output = _run(["src"])
    assert code == EXIT_OK, output
    assert "0 new" in output


def test_committed_baseline_is_nearly_empty():
    payload = json.loads(
        (REPO_ROOT / "reprolint-baseline.json").read_text(encoding="utf-8")
    )
    assert payload["version"] == 1
    assert len(payload["findings"]) <= 3

"""Tests for serving-side health glue: monitor, default rules, shadow canary.

The integration tests inject a latency-SLO breach by feeding synthetic
histogram snapshots through a :class:`HealthMonitor` attached to a *real*
front end, then watch the ``pending → firing → resolved`` lifecycle surface
everywhere the tentpole promises: the ``/metrics`` exposition (``ALERTS``
series + rollup gauges), the ``/alerts`` report, and the ``ALERTS`` wire verb
— on both the threaded and the asyncio front ends.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.obs import Metric, bench_result, compare_results, has_regressions, names
from repro.obs.health import BurnRateRule, HealthEngine
from repro.serving import (
    AsyncQueryFrontend,
    BatchQueryEngine,
    HealthMonitor,
    QueryServer,
    ShadowCanary,
    alerts_wire_reply,
    default_alert_rules,
)
from repro.serving.alerts import augment_snapshot
from repro.serving.metrics import DEFAULT_LATENCY_BUCKETS, render_prometheus_text
from repro.serving.server import _handle_line


@pytest.fixture
def engine(small_social_graph):
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(small_social_graph)
    return BatchQueryEngine(index)


class _EventLog:
    def __init__(self):
        self.events = []

    def event(self, name, **fields):
        self.events.append((name, fields))


def _latency_snapshot(count, good):
    """Synthetic snapshot carrying only the latency histogram (cumulative)."""
    return {
        "histograms": {
            names.LATENCY_SECONDS: {
                "buckets": [(0.025, float(good)), (float("inf"), float(count))],
                "count": float(count),
            }
        }
    }


def _slo_rule():
    """The default burn-rate rule shrunk to test-sized windows."""
    return BurnRateRule(
        name="LatencySLOBurnRate",
        severity="page",
        histogram=names.LATENCY_SECONDS,
        objective=0.99,
        threshold_seconds=0.025,
        short_window_seconds=5.0,
        long_window_seconds=10.0,
        burn_factor=14.4,
        for_seconds=5.0,
    )


class _SLOBreachScript:
    """Drives a monitor through healthy → cliff → recovery, one tick at a time.

    The cumulative counters mimic a server that suddenly answers everything
    slower than the SLO threshold (the cliff freezes the ``good`` bucket),
    then recovers behind a flood of fast requests that dilutes both burn
    windows below the factor.
    """

    def __init__(self):
        self.feed = {"snap": {}}
        self.count = 0.0
        self.good = 0.0
        self.monitor = HealthMonitor(
            lambda: self.feed["snap"],
            rules=[_slo_rule()],
            interval_seconds=3600.0,
        )

    def _tick(self, now):
        self.feed["snap"] = _latency_snapshot(self.count, self.good)
        return self.monitor.tick(now=float(now))

    def run_healthy(self):
        events = []
        for t in range(13):
            self.count = self.good = 100.0 * t
            events += self._tick(t)
        return events

    def run_cliff_to_pending(self):
        self.count += 10_000.0  # good frozen: every new request is slow
        return self._tick(13)

    def run_cliff_to_firing(self):
        events = []
        for t in range(14, 19):
            self.count += 10_000.0
            events += self._tick(t)
        return events

    def run_recovery(self):
        self.count += 10_000_000.0
        self.good += 10_000_000.0
        return self._tick(19)


class TestDefaultAlertRules:
    def test_rule_names_unique_and_engine_constructs(self):
        rules = default_alert_rules()
        assert len({rule.name for rule in rules}) == len(rules) == 8
        HealthEngine(rules)  # must not raise

    def test_burn_rule_threshold_is_a_histogram_bound(self):
        """The SLO threshold must coincide with a bucket edge, or the burn
        rate silently evaluates to no-data forever."""
        (burn,) = [r for r in default_alert_rules() if isinstance(r, BurnRateRule)]
        burn.validate_bounds(DEFAULT_LATENCY_BUCKETS)

    def test_rules_read_only_registered_names(self):
        from repro.obs.names import REGISTERED_NAMES

        for rule in default_alert_rules():
            for attr in ("metric", "denominator", "guard_metric", "histogram"):
                value = getattr(rule, attr, None)
                if isinstance(value, str):
                    assert value in REGISTERED_NAMES
            for attr in ("numerator",):
                for name in getattr(rule, attr, ()):
                    assert name in REGISTERED_NAMES


class TestHealthMonitor:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor(dict, interval_seconds=0.0)

    def test_background_thread_ticks(self):
        monitor = HealthMonitor(dict, interval_seconds=0.005)
        with monitor:
            deadline = 100
            while monitor.num_ticks == 0 and deadline:
                deadline -= 1
                import time

                time.sleep(0.005)
        assert monitor.num_ticks > 0
        # stop() is idempotent and safe after the context exit.
        monitor.stop()

    def test_failing_snapshot_source_does_not_kill_monitor(self):
        log = _EventLog()

        def broken():
            raise RuntimeError("snapshot source down")

        monitor = HealthMonitor(broken, interval_seconds=60.0, logger=log)
        assert monitor.tick(now=0.0) == []
        assert log.events[0][0] == "health_snapshot_error"

    def test_wire_reply_without_monitor_reports_disabled(self):
        payload = json.loads(alerts_wire_reply(None))
        assert payload == {
            "enabled": False,
            "rules": [],
            "firing": [],
            "pending": [],
            "recent": [],
        }

    def test_augment_snapshot_merges_gauges_and_active_alerts(self):
        monitor = HealthMonitor(dict, rules=[_slo_rule()], interval_seconds=60.0)
        stats = augment_snapshot({"qps": 1.0}, health=monitor)
        assert stats["alerts_firing"] == 0.0
        assert stats["alerts_pending"] == 0.0
        # The alerts list only appears when something is pending/firing.
        assert "alerts" not in stats


class TestShadowCanary:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShadowCanary(1.5)
        with pytest.raises(ValueError):
            ShadowCanary(-0.1)
        with pytest.raises(ValueError):
            ShadowCanary(0.5, max_queue=0)
        with pytest.raises(ValueError):
            ShadowCanary(0.5, max_pairs_per_batch=0)

    def test_correct_batch_verifies_clean(self, engine):
        sources = np.array([0, 1, 2, 3], dtype=np.int64)
        targets = np.array([5, 6, 7, 8], dtype=np.int64)
        distances = engine.query_batch(sources, targets)
        with ShadowCanary(1.0, seed=7) as shadow:
            assert shadow.submit(engine, sources, targets, distances)
            shadow.flush()
            stats = shadow.stats()
        assert stats[names.SHADOW_BATCHES_TOTAL] == 1.0
        assert stats[names.SHADOW_PAIRS_TOTAL] == 4.0
        assert stats[names.SHADOW_MISMATCHES_TOTAL] == 0.0
        assert stats[names.SHADOW_DROPPED_TOTAL] == 0.0

    def test_wrong_distances_counted_and_logged(self, engine):
        log = _EventLog()
        sources = np.array([0, 1], dtype=np.int64)
        targets = np.array([5, 6], dtype=np.int64)
        wrong = engine.query_batch(sources, targets) + 1.0
        with ShadowCanary(1.0, seed=7, logger=log) as shadow:
            shadow.submit(engine, sources, targets, wrong)
            shadow.flush()
            stats = shadow.stats()
        assert stats[names.SHADOW_MISMATCHES_TOTAL] == 2.0
        (event,) = [e for e in log.events if e[0] == "shadow_mismatch"]
        assert event[1]["count"] == 2
        example = event[1]["examples"][0]
        assert example["served"] == example["expected"] + 1.0

    def test_zero_rate_or_stopped_canary_never_samples(self, engine):
        sources = np.array([0], dtype=np.int64)
        targets = np.array([5], dtype=np.int64)
        distances = engine.query_batch(sources, targets)
        zero = ShadowCanary(0.0)
        zero.start()
        assert not zero.maybe_submit(engine, sources, targets, distances)
        zero.stop()
        stopped = ShadowCanary(1.0)  # never started: no worker to hand off to
        assert not stopped.maybe_submit(engine, sources, targets, distances)

    def test_full_queue_drops_and_counts(self, engine):
        sources = np.array([0], dtype=np.int64)
        targets = np.array([5], dtype=np.int64)
        distances = engine.query_batch(sources, targets)
        shadow = ShadowCanary(1.0, max_queue=1)  # worker not started: queue fills
        assert shadow.submit(engine, sources, targets, distances)
        assert not shadow.submit(engine, sources, targets, distances)
        assert shadow.stats()[names.SHADOW_DROPPED_TOTAL] == 1.0
        shadow.start()
        shadow.flush()
        shadow.stop()
        assert shadow.stats()[names.SHADOW_MISMATCHES_TOTAL] == 0.0

    def test_oversized_batch_truncated_to_cap(self, engine):
        sources = np.zeros(8, dtype=np.int64)
        targets = np.full(8, 5, dtype=np.int64)
        distances = engine.query_batch(sources, targets)
        with ShadowCanary(1.0, max_pairs_per_batch=3) as shadow:
            shadow.submit(engine, sources, targets, distances)
            shadow.flush()
            assert shadow.stats()[names.SHADOW_PAIRS_TOTAL] == 3.0


class TestThreadedServerIntegration:
    def test_slo_breach_lifecycle_on_all_surfaces(self, engine):
        """pending → firing → resolved visible on /metrics text, the alerts
        report, and the ALERTS wire verb of the threaded server."""
        script = _SLOBreachScript()
        with QueryServer(engine) as server:
            server.health = script.monitor

            assert script.run_healthy() == []

            assert script.run_cliff_to_pending() == ["LatencySLOBurnRate:pending"]
            stats = server.metrics_snapshot()
            assert stats["alerts_pending"] == 1.0 and stats["alerts_firing"] == 0.0
            text = render_prometheus_text(stats)
            assert (
                'ALERTS{alertname="LatencySLOBurnRate",severity="page"'
                ',alertstate="pending"} 1' in text
            )
            payload = json.loads(_handle_line(server, "ALERTS"))
            assert payload["enabled"] is True
            assert [a["alertname"] for a in payload["pending"]] == [
                "LatencySLOBurnRate"
            ]
            assert payload["firing"] == []

            assert script.run_cliff_to_firing() == ["LatencySLOBurnRate:firing"]
            stats = server.metrics_snapshot()
            assert stats["alerts_firing"] == 1.0 and stats["alerts_pending"] == 0.0
            text = render_prometheus_text(stats)
            assert (
                'ALERTS{alertname="LatencySLOBurnRate",severity="page"'
                ',alertstate="firing"} 1' in text
            )
            # Command normalisation: the verb is case-insensitive like STATS.
            payload = json.loads(_handle_line(server, "alerts"))
            assert [a["alertname"] for a in payload["firing"]] == [
                "LatencySLOBurnRate"
            ]

            assert script.run_recovery() == ["LatencySLOBurnRate:resolved"]
            stats = server.metrics_snapshot()
            assert stats["alerts_firing"] == 0.0 and stats["alerts_pending"] == 0.0
            assert "alerts" not in stats
            assert "ALERTS{" not in render_prometheus_text(stats)
            payload = json.loads(_handle_line(server, "ALERTS"))
            assert payload["firing"] == [] and payload["pending"] == []
            assert [r["alertname"] for r in payload["recent"]] == [
                "LatencySLOBurnRate"
            ]

    def test_wire_verb_without_monitor_reports_disabled(self, engine):
        with QueryServer(engine) as server:
            payload = json.loads(_handle_line(server, "ALERTS"))
        assert payload["enabled"] is False

    def test_forced_canary_on_served_batch_verifies_clean(self, engine):
        shadow = ShadowCanary(1.0, seed=3)
        shadow.start()
        sources = np.array([0, 1, 2, 3], dtype=np.int64)
        targets = np.array([5, 6, 7, 8], dtype=np.int64)
        with QueryServer(engine, max_batch_size=4) as server:
            server.shadow = shadow
            server.submit(sources, targets).wait(30)
        # The reply future resolves before the batch worker reaches the
        # shadow hook; the context exit joins the worker first.
        shadow.flush()
        stats = shadow.stats()
        shadow.stop()
        assert stats[names.SHADOW_PAIRS_TOTAL] == 4.0
        assert stats[names.SHADOW_MISMATCHES_TOTAL] == 0.0

    def test_injected_wrong_distance_increments_mismatches(
        self, engine, monkeypatch
    ):
        """A kernel serving off-by-one distances is caught by the canary and
        lands in the snapshot as ``shadow_mismatches_total``."""
        original = engine.query_batch

        def off_by_one(sources, targets, *args, **kwargs):
            return original(sources, targets, *args, **kwargs) + 1.0

        monkeypatch.setattr(engine, "query_batch", off_by_one)
        shadow = ShadowCanary(1.0, seed=3)
        shadow.start()
        sources = np.array([0, 1, 2, 3], dtype=np.int64)
        targets = np.array([5, 6, 7, 8], dtype=np.int64)
        with QueryServer(engine, max_batch_size=4) as server:
            server.shadow = shadow
            server.submit(sources, targets).wait(30)
            shadow.flush()
            stats = server.metrics_snapshot()
        shadow.flush()
        mismatches = shadow.stats()[names.SHADOW_MISMATCHES_TOTAL]
        shadow.stop()
        assert mismatches == 4.0
        # The snapshot read while serving may predate verification, but the
        # canary counters are always present once the canary is attached.
        assert names.SHADOW_MISMATCHES_TOTAL in stats

    def test_shadow_mismatch_fails_bench_compare_exact_zero_gate(self):
        """The committed observability baselines carry all-zero mismatch
        samples, so a single divergence must gate ``bench compare``."""
        baseline = bench_result(
            "observability",
            [
                Metric(
                    "shadow_mismatches",
                    0.0,
                    higher_is_better=False,
                    samples=[0.0, 0.0, 0.0],
                )
            ],
        )
        clean = bench_result(
            "observability",
            [Metric("shadow_mismatches", 0.0, higher_is_better=False)],
        )
        poisoned = bench_result(
            "observability",
            [Metric("shadow_mismatches", 1.0, higher_is_better=False)],
        )
        assert not has_regressions(compare_results(baseline, clean))
        comparisons = compare_results(baseline, poisoned)
        assert has_regressions(comparisons)
        (verdict,) = comparisons
        assert verdict.status == "regressed"


class TestAsyncFrontendIntegration:
    def test_slo_breach_lifecycle_on_all_surfaces(self, engine):
        """Same injected breach as the threaded test, surfaced through the
        asyncio front end: HTTP /metrics, HTTP /alerts, and the wire verb."""
        script = _SLOBreachScript()

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            frontend.health = script.monitor
            host, port = frontend.http_address
            from tests.test_serving_aio import _http_request

            observed = {}
            assert script.run_healthy() == []

            assert script.run_cliff_to_pending() == ["LatencySLOBurnRate:pending"]
            observed["pending_metrics"] = await _http_request(
                host, port, "GET", "/metrics"
            )
            observed["pending_alerts"] = await _http_request(
                host, port, "GET", "/alerts"
            )
            observed["pending_wire"] = await frontend._handle_line("ALERTS")

            assert script.run_cliff_to_firing() == ["LatencySLOBurnRate:firing"]
            observed["firing_metrics"] = await _http_request(
                host, port, "GET", "/metrics"
            )
            observed["firing_alerts"] = await _http_request(
                host, port, "GET", "/alerts"
            )
            observed["firing_wire"] = await frontend._handle_line("alerts")

            assert script.run_recovery() == ["LatencySLOBurnRate:resolved"]
            observed["resolved_metrics"] = await _http_request(
                host, port, "GET", "/metrics"
            )
            observed["resolved_alerts"] = await _http_request(
                host, port, "GET", "/alerts"
            )
            await frontend.stop()
            return observed

        observed = asyncio.run(scenario())

        status, body = observed["pending_metrics"]
        assert status == 200
        assert (
            'ALERTS{alertname="LatencySLOBurnRate",severity="page"'
            ',alertstate="pending"} 1' in body
        )
        assert "repro_pll_alerts_pending 1" in body
        status, body = observed["pending_alerts"]
        assert status == 200
        payload = json.loads(body)
        assert [a["alertname"] for a in payload["pending"]] == ["LatencySLOBurnRate"]
        wire = json.loads(observed["pending_wire"])
        assert wire["pending"] and not wire["firing"]

        status, body = observed["firing_metrics"]
        assert (
            'ALERTS{alertname="LatencySLOBurnRate",severity="page"'
            ',alertstate="firing"} 1' in body
        )
        assert "repro_pll_alerts_firing 1" in body
        payload = json.loads(observed["firing_alerts"][1])
        assert [a["alertname"] for a in payload["firing"]] == ["LatencySLOBurnRate"]
        wire = json.loads(observed["firing_wire"])
        assert wire["firing"] and not wire["pending"]

        status, body = observed["resolved_metrics"]
        assert "ALERTS{" not in body
        assert "repro_pll_alerts_firing 0" in body
        payload = json.loads(observed["resolved_alerts"][1])
        assert payload["firing"] == [] and payload["pending"] == []
        assert [r["alertname"] for r in payload["recent"]] == ["LatencySLOBurnRate"]

    def test_alerts_endpoints_without_monitor_report_disabled(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            host, port = frontend.http_address
            from tests.test_serving_aio import _http_request

            http_reply = await _http_request(host, port, "GET", "/alerts")
            wire_reply = await frontend._handle_line("ALERTS")
            await frontend.stop()
            return http_reply, wire_reply

        (status, body), wire = asyncio.run(scenario())
        assert status == 200
        assert json.loads(body)["enabled"] is False
        assert json.loads(wire)["enabled"] is False

    def test_shadow_sampling_on_async_batches(self, engine):
        """The async front end's batch path feeds the canary too."""
        shadow = ShadowCanary(1.0, seed=5)
        shadow.start()

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            frontend.shadow = shadow
            replies = await asyncio.gather(
                *(frontend.submit([v], [v + 5]) for v in range(4))
            )
            await frontend.stop()
            return replies

        replies = asyncio.run(scenario())
        assert len(replies) == 4
        shadow.flush()
        stats = shadow.stats()
        shadow.stop()
        assert stats[names.SHADOW_PAIRS_TOTAL] >= 4.0
        assert stats[names.SHADOW_MISMATCHES_TOTAL] == 0.0

    def test_debug_bundle_includes_alerts_and_environment(self, engine):
        monitor = HealthMonitor(dict, rules=[_slo_rule()], interval_seconds=3600.0)

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            frontend.health = monitor
            host, port = frontend.http_address
            from tests.test_serving_aio import _http_request

            reply = await _http_request(host, port, "GET", "/debug/bundle")
            await frontend.stop()
            return reply

        status, body = asyncio.run(scenario())
        assert status == 200
        bundle = json.loads(body)
        assert set(bundle) >= {
            "alerts",
            "environment",
            "index_health",
            "kernel",
            "metrics",
            "threads",
            "traces",
        }
        assert bundle["alerts"]["enabled"] is True
        assert "alerts_firing" in bundle["metrics"]

"""End-to-end integration tests across the whole library.

These tests stitch together the pieces a downstream user would combine: load
or generate a network, build indexes with different variants, cross-validate
them against each other and against online baselines, persist and reload, and
push the result through the experiment harness.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DynamicPrunedLandmarkLabeling,
    PathPrunedLandmarkLabeling,
    PrunedLandmarkLabeling,
    WeightedPrunedLandmarkLabeling,
    load_index,
    save_index,
)
from repro.baselines import (
    BidirectionalBFSOracle,
    HierarchicalHubLabeling,
    LandmarkOracle,
    TreeDecompositionOracle,
)
from repro.datasets import load_dataset
from repro.experiments import measure_method, random_pairs
from repro.generators import assign_random_weights, split_edge_stream
from repro.graph import GraphBuilder, read_edge_list, write_edge_list
from tests.conftest import sample_pairs


class TestAllOraclesAgree:
    """Every exact method must return identical distances on the same graph."""

    def test_cross_validation_on_dataset(self):
        graph = load_dataset("notredame")
        pairs = sample_pairs(graph, 150, seed=0)

        pll = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
        pll_plain = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(graph)
        path_oracle = PathPrunedLandmarkLabeling().build(graph)
        hhl = HierarchicalHubLabeling().build(graph)
        tree = TreeDecompositionOracle().build(graph)
        online = BidirectionalBFSOracle().build(graph)

        reference = pll.distances(pairs)
        for oracle in (pll_plain, path_oracle, hhl, tree):
            assert np.array_equal(oracle.distances(pairs), reference)
        assert np.array_equal(online.distances(pairs[:30]), reference[:30])

    def test_landmark_estimates_bracket_truth(self):
        graph = load_dataset("gnutella")
        pll = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
        landmark = LandmarkOracle(16).build(graph)
        for s, t in sample_pairs(graph, 100, seed=1):
            truth = pll.distance(s, t)
            if np.isfinite(truth):
                assert landmark.lower_bound(s, t) <= truth <= landmark.estimate(s, t)


class TestUserWorkflow:
    def test_build_save_load_query_workflow(self, tmp_path):
        # A user builds a graph from named entities, indexes it, saves it,
        # reloads it in a different process and answers queries.
        builder = GraphBuilder()
        friendships = [
            ("ann", "bob"), ("bob", "cat"), ("cat", "dan"), ("dan", "eve"),
            ("eve", "fay"), ("ann", "cat"), ("bob", "dan"), ("fay", "gus"),
        ]
        builder.add_edges(friendships)
        graph, labeling = builder.build()

        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(graph)
        # ann - cat - dan - eve - fay - gus is the shortest chain (5 hops).
        assert index.distance(labeling.id_of("ann"), labeling.id_of("gus")) == 5.0

        index_path = tmp_path / "social.npz"
        save_index(index, index_path)
        reloaded = load_index(index_path)
        assert reloaded.distance(
            labeling.id_of("ann"), labeling.id_of("gus")
        ) == 5.0

    def test_edge_list_roundtrip_then_index(self, tmp_path):
        graph = load_dataset("gnutella")
        path = tmp_path / "gnutella.txt.gz"
        write_edge_list(graph, path)
        loaded, _ = read_edge_list(path)
        assert loaded.structurally_equal(graph)
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(loaded)
        baseline = BidirectionalBFSOracle().build(graph)
        for s, t in sample_pairs(graph, 25, seed=2):
            assert index.distance(s, t) == baseline.distance(s, t)

    def test_weighted_and_unweighted_consistency(self):
        graph = load_dataset("notredame")
        uniform = assign_random_weights(graph, low=1.0, high=1.0, seed=0)
        hop_index = PrunedLandmarkLabeling().build(graph)
        weighted_index = WeightedPrunedLandmarkLabeling().build(uniform)
        for s, t in sample_pairs(graph, 60, seed=3):
            assert weighted_index.distance(s, t) == hop_index.distance(s, t)

    def test_dynamic_index_tracks_growing_network(self):
        graph = load_dataset("gnutella")
        initial, stream = split_edge_stream(graph, 0.85, seed=4)
        dynamic = DynamicPrunedLandmarkLabeling().build(initial)
        dynamic.insert_edges(stream[:200])

        # Rebuild a static index on exactly the same edge set and compare.
        from repro.graph.csr import Graph

        current = Graph(
            graph.num_vertices, list(initial.edges()) + list(stream[:200])
        )
        static = PrunedLandmarkLabeling().build(current)
        for s, t in sample_pairs(graph, 120, seed=5):
            assert dynamic.distance(s, t) == static.distance(s, t)

    def test_harness_measures_real_dataset(self):
        graph = load_dataset("notredame")
        pairs = random_pairs(graph.num_vertices, 200, seed=6)
        measurement = measure_method(
            "PLL",
            lambda: PrunedLandmarkLabeling(num_bit_parallel_roots=16),
            graph,
            pairs,
            dataset="notredame",
        )
        assert measurement.finished
        # Index-backed queries answer in far under a millisecond on average.
        assert measurement.query_seconds < 1e-3

"""Tests for the fully dynamic (insert + remove) index extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.apsp import APSPOracle
from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError, VertexError
from repro.generators import barabasi_albert_graph, split_edge_stream
from repro.graph.csr import Graph
from tests.conftest import sample_pairs


class TestDynamicBasics:
    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            DynamicPrunedLandmarkLabeling().distance(0, 1)

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            DynamicPrunedLandmarkLabeling().build(graph)

    def test_initial_build_matches_static(self, small_social_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(small_social_graph)
        truth = APSPOracle().build(small_social_graph)
        for s, t in sample_pairs(small_social_graph, 150, seed=0):
            assert oracle.distance(s, t) == truth.distance(s, t)

    def test_insert_connects_components(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        assert oracle.distance(0, 3) == float("inf")
        oracle.insert_edge(1, 2)
        assert oracle.distance(0, 3) == 3.0
        assert oracle.distance(0, 2) == 2.0

    def test_insert_shortcut_reduces_distance(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        assert oracle.distance(0, 4) == 4.0
        oracle.insert_edge(0, 4)
        assert oracle.distance(0, 4) == 1.0
        assert oracle.distance(1, 4) == 2.0

    def test_duplicate_and_self_loop_inserts_are_noops(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        before = oracle.average_label_size()
        oracle.insert_edge(0, 1)   # already present
        oracle.insert_edge(2, 2)   # self loop
        assert oracle.average_label_size() == before
        assert oracle.distance(0, 4) == 4.0

    def test_out_of_range_insert_rejected(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(IndexBuildError):
            oracle.insert_edge(0, 99)

    def test_label_of(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        entries = oracle.label_of(0)
        assert (0, 0) in entries


class TestDynamicConvergence:
    def test_stream_converges_to_full_graph(self):
        full = barabasi_albert_graph(150, 2, seed=13)
        initial, stream = split_edge_stream(full, 0.6, seed=13)
        oracle = DynamicPrunedLandmarkLabeling().build(initial)
        oracle.insert_edges(stream)
        truth = APSPOracle().build(full)
        for s, t in sample_pairs(full, 250, seed=14):
            assert oracle.distance(s, t) == truth.distance(s, t)

    def test_incremental_queries_along_the_way(self):
        full = barabasi_albert_graph(80, 2, seed=21)
        initial, stream = split_edge_stream(full, 0.5, seed=21)
        oracle = DynamicPrunedLandmarkLabeling().build(initial)

        current_edges = list(initial.edges())
        rng = np.random.default_rng(5)
        for edge in stream:
            oracle.insert_edge(*edge)
            current_edges.append(edge)
            current = Graph(full.num_vertices, current_edges)
            truth = APSPOracle().build(current)
            for _ in range(5):
                s = int(rng.integers(0, full.num_vertices))
                t = int(rng.integers(0, full.num_vertices))
                assert oracle.distance(s, t) == truth.distance(s, t)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500), n=st.integers(min_value=4, max_value=25))
    def test_random_insertion_streams(self, seed, n):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(n, 3 * n))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(num_edges)
        ]
        full = Graph(n, edges)
        all_edges = list(full.edges())
        if len(all_edges) < 2:
            return
        rng.shuffle(all_edges)
        cut = max(1, len(all_edges) // 2)
        initial = Graph(n, all_edges[:cut])
        oracle = DynamicPrunedLandmarkLabeling().build(initial)
        oracle.insert_edges(all_edges[cut:])
        truth = APSPOracle().build(full)
        for s in range(n):
            for t in range(n):
                assert oracle.distance(s, t) == truth.distance(s, t)


class TestDecrementalBasics:
    def test_remove_disconnects(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        oracle.remove_edge(2, 3)
        assert oracle.distance(0, 4) == float("inf")
        assert oracle.distance(0, 2) == 2.0
        assert oracle.distance(3, 4) == 1.0

    def test_remove_shortcut_restores_long_path(self):
        # A 6-cycle: dropping one edge stretches the opposite pair.
        n = 6
        cycle = Graph(n, [(i, (i + 1) % n) for i in range(n)])
        oracle = DynamicPrunedLandmarkLabeling().build(cycle)
        assert oracle.distance(0, 3) == 3.0
        oracle.remove_edge(0, 5)
        assert oracle.distance(0, 3) == 3.0
        assert oracle.distance(0, 5) == 5.0
        assert oracle.distance(0, 4) == 4.0

    def test_remove_then_reinsert_roundtrip(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        truth = APSPOracle().build(path_graph)
        oracle.remove_edge(1, 2)
        oracle.insert_edge(1, 2)
        for s in range(5):
            for t in range(5):
                assert oracle.distance(s, t) == truth.distance(s, t)

    def test_remove_absent_edge_and_self_loop_are_noops(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        before = oracle.average_label_size()
        oracle.remove_edge(0, 4)   # never existed
        oracle.remove_edge(2, 2)   # self loop
        assert oracle.average_label_size() == before
        assert oracle.distance(0, 4) == 4.0
        assert oracle.dirty_vertices == frozenset()

    def test_out_of_range_remove_rejected(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(IndexBuildError):
            oracle.remove_edge(0, 99)
        with pytest.raises(IndexBuildError):
            oracle.remove_edge(-1, 0)

    def test_remove_edges_stream(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        oracle.remove_edges([(0, 1), (2, 3)])
        # The 4-cycle splits into two components: {0, 3} and {1, 2}.
        assert oracle.distance(0, 3) == 1.0
        assert oracle.distance(1, 2) == 1.0
        assert oracle.distance(0, 1) == float("inf")


class TestDecrementalCorrectness:
    #: >= 5 seeds x >= 40 mutations = >= 200 mutations checked against BFS
    #: ground truth after every single step (the PR acceptance bar).
    SEEDS = (0, 1, 2, 3, 4)
    MUTATIONS_PER_SEED = 40

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_mutation_stream_matches_bfs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(12, 28))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(int(rng.integers(n, 3 * n)))
        ]
        graph = Graph(n, edges)
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        current = {tuple(sorted(edge)) for edge in graph.edges()}

        for _ in range(self.MUTATIONS_PER_SEED):
            if current and rng.random() < 0.5:
                a, b = sorted(current)[int(rng.integers(0, len(current)))]
                oracle.remove_edge(a, b)
                current.discard((a, b))
            else:
                a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
                oracle.insert_edge(a, b)
                if a != b:
                    current.add(tuple(sorted((a, b))))
            truth = APSPOracle().build(Graph(n, sorted(current)))
            for s in range(n):
                for t in range(n):
                    assert oracle.distance(s, t) == truth.distance(s, t), (
                        f"seed={seed} pair=({s},{t})"
                    )

    def test_batch_equals_scalar_on_frozen_snapshot_after_deletions(self):
        graph = barabasi_albert_graph(120, 3, seed=9)
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        rng = np.random.default_rng(10)
        edges = sorted({tuple(sorted(edge)) for edge in graph.edges()})
        for index in rng.choice(len(edges), size=15, replace=False):
            oracle.remove_edge(*edges[int(index)])
        frozen = oracle.freeze()
        pairs = sample_pairs(graph, 300, seed=11)
        pair_array = np.asarray(pairs, dtype=np.int64)
        batched = frozen.distance_batch(pair_array[:, 0], pair_array[:, 1])
        for (s, t), batch_distance in zip(pairs, batched):
            assert batch_distance == frozen.distance(s, t)
            assert batch_distance == oracle.distance(s, t)


class TestDiffFreeze:
    def _mutate(self, oracle, rng, n, current, steps):
        for _ in range(steps):
            if current and rng.random() < 0.5:
                a, b = sorted(current)[int(rng.integers(0, len(current)))]
                oracle.remove_edge(a, b)
                current.discard((a, b))
            else:
                a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
                oracle.insert_edge(a, b)
                if a != b:
                    current.add(tuple(sorted((a, b))))

    def test_diff_freeze_equals_full_freeze(self):
        graph = barabasi_albert_graph(150, 3, seed=21)
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        rng = np.random.default_rng(22)
        current = {tuple(sorted(edge)) for edge in graph.edges()}
        n = graph.num_vertices
        for _ in range(3):
            self._mutate(oracle, rng, n, current, 8)
            assert len(oracle.dirty_vertices) > 0
            diffed = oracle.freeze(diff=True)
            full = oracle.freeze(diff=False)
            assert np.array_equal(
                diffed.label_set.indptr, full.label_set.indptr
            )
            assert np.array_equal(
                diffed.label_set.hub_ranks, full.label_set.hub_ranks
            )
            assert np.array_equal(
                diffed.label_set.distances, full.label_set.distances
            )
            assert oracle.dirty_vertices == frozenset()

    def test_freeze_clears_dirty_and_isolates_snapshot(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        oracle.remove_edge(2, 3)
        assert len(oracle.dirty_vertices) > 0
        frozen = oracle.freeze()
        assert oracle.dirty_vertices == frozenset()
        assert frozen.distance(0, 4) == float("inf")
        oracle.insert_edge(2, 3)
        assert frozen.distance(0, 4) == float("inf")
        assert oracle.distance(0, 4) == 4.0

    def test_noop_mutations_do_not_dirty(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        oracle.insert_edge(0, 1)       # already present
        oracle.remove_edge(0, 2)       # absent
        assert oracle.dirty_vertices == frozenset()


class TestDynamicVertexValidation:
    """Regression: out-of-range ids used to raise raw IndexError (too large)
    or silently answer for vertex ``n + id`` (negative, via Python's
    end-relative list indexing)."""

    def test_distance_rejects_out_of_range(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(VertexError):
            oracle.distance(0, 99)
        with pytest.raises(VertexError):
            oracle.distance(-1, 0)
        # The negative id must not alias vertex n - 1.
        with pytest.raises(VertexError):
            oracle.distance(-1, -1)

    def test_distances_rejects_out_of_range(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(VertexError):
            oracle.distances([(0, 1), (2, 5)])
        with pytest.raises(VertexError):
            oracle.distances([(-3, 0)])

    def test_label_of_rejects_out_of_range(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(VertexError):
            oracle.label_of(5)
        with pytest.raises(VertexError):
            oracle.label_of(-1)

    def test_vertex_error_is_an_index_error(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(IndexError):
            oracle.distance(0, 99)

"""Tests for the incremental (insert-only) dynamic index extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.apsp import APSPOracle
from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError
from repro.generators import barabasi_albert_graph, split_edge_stream
from repro.graph.csr import Graph
from tests.conftest import sample_pairs


class TestDynamicBasics:
    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            DynamicPrunedLandmarkLabeling().distance(0, 1)

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            DynamicPrunedLandmarkLabeling().build(graph)

    def test_initial_build_matches_static(self, small_social_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(small_social_graph)
        truth = APSPOracle().build(small_social_graph)
        for s, t in sample_pairs(small_social_graph, 150, seed=0):
            assert oracle.distance(s, t) == truth.distance(s, t)

    def test_insert_connects_components(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        oracle = DynamicPrunedLandmarkLabeling().build(graph)
        assert oracle.distance(0, 3) == float("inf")
        oracle.insert_edge(1, 2)
        assert oracle.distance(0, 3) == 3.0
        assert oracle.distance(0, 2) == 2.0

    def test_insert_shortcut_reduces_distance(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        assert oracle.distance(0, 4) == 4.0
        oracle.insert_edge(0, 4)
        assert oracle.distance(0, 4) == 1.0
        assert oracle.distance(1, 4) == 2.0

    def test_duplicate_and_self_loop_inserts_are_noops(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        before = oracle.average_label_size()
        oracle.insert_edge(0, 1)   # already present
        oracle.insert_edge(2, 2)   # self loop
        assert oracle.average_label_size() == before
        assert oracle.distance(0, 4) == 4.0

    def test_out_of_range_insert_rejected(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        with pytest.raises(IndexBuildError):
            oracle.insert_edge(0, 99)

    def test_label_of(self, path_graph):
        oracle = DynamicPrunedLandmarkLabeling().build(path_graph)
        entries = oracle.label_of(0)
        assert (0, 0) in entries


class TestDynamicConvergence:
    def test_stream_converges_to_full_graph(self):
        full = barabasi_albert_graph(150, 2, seed=13)
        initial, stream = split_edge_stream(full, 0.6, seed=13)
        oracle = DynamicPrunedLandmarkLabeling().build(initial)
        oracle.insert_edges(stream)
        truth = APSPOracle().build(full)
        for s, t in sample_pairs(full, 250, seed=14):
            assert oracle.distance(s, t) == truth.distance(s, t)

    def test_incremental_queries_along_the_way(self):
        full = barabasi_albert_graph(80, 2, seed=21)
        initial, stream = split_edge_stream(full, 0.5, seed=21)
        oracle = DynamicPrunedLandmarkLabeling().build(initial)

        current_edges = list(initial.edges())
        rng = np.random.default_rng(5)
        for edge in stream:
            oracle.insert_edge(*edge)
            current_edges.append(edge)
            current = Graph(full.num_vertices, current_edges)
            truth = APSPOracle().build(current)
            for _ in range(5):
                s = int(rng.integers(0, full.num_vertices))
                t = int(rng.integers(0, full.num_vertices))
                assert oracle.distance(s, t) == truth.distance(s, t)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500), n=st.integers(min_value=4, max_value=25))
    def test_random_insertion_streams(self, seed, n):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(n, 3 * n))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(num_edges)
        ]
        full = Graph(n, edges)
        all_edges = list(full.edges())
        if len(all_edges) < 2:
            return
        rng.shuffle(all_edges)
        cut = max(1, len(all_edges) // 2)
        initial = Graph(n, all_edges[:cut])
        oracle = DynamicPrunedLandmarkLabeling().build(initial)
        oracle.insert_edges(all_edges[cut:])
        truth = APSPOracle().build(full)
        for s in range(n):
            for t in range(n):
                assert oracle.distance(s, t) == truth.distance(s, t)

"""Tests for the vectorised one-to-many queries and top-k ranking helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import PrunedLandmarkLabeling
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances
from tests.conftest import random_test_graphs


def bfs_reference(graph, source):
    truth = bfs_distances(graph, source).astype(np.float64)
    truth[truth == UNREACHABLE] = np.inf
    return truth


class TestDistancesFrom:
    @pytest.mark.parametrize("num_bp", [0, 4])
    def test_all_targets_match_bfs(self, medium_social_graph, num_bp):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(
            medium_social_graph
        )
        for source in (0, 17, 200):
            expected = bfs_reference(medium_social_graph, source)
            got = index.distances_from(source)
            assert np.array_equal(got, expected)

    def test_subset_of_targets(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(
            medium_social_graph
        )
        rng = np.random.default_rng(0)
        targets = rng.integers(0, medium_social_graph.num_vertices, size=50)
        source = 3
        expected = bfs_reference(medium_social_graph, source)[targets]
        got = index.distances_from(source, targets)
        assert np.array_equal(got, expected)

    def test_source_included_in_targets(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        got = index.distances_from(5, [5, 6, 7])
        assert got[0] == 0.0

    def test_disconnected_targets_are_inf(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        got = index.distances_from(0)
        assert np.isinf(got[3]) and np.isinf(got[5])
        assert got[0] == 0.0 and got[1] == 1.0

    def test_matches_scalar_queries_on_random_graphs(self):
        for graph in random_test_graphs(3, seed=51):
            index = PrunedLandmarkLabeling(num_bit_parallel_roots=3).build(graph)
            source = graph.num_vertices // 2
            batch = index.distances_from(source)
            for target in range(0, graph.num_vertices, 7):
                assert batch[target] == index.distance(source, target)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500), num_bp=st.integers(0, 3))
    def test_property_random_graphs(self, seed, num_bp):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 35))
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(int(rng.integers(0, 3 * n)))
        ]
        graph = Graph(n, edges)
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(graph)
        source = int(rng.integers(0, n))
        assert np.array_equal(index.distances_from(source), bfs_reference(graph, source))


class TestTopKClosest:
    def test_ranking_matches_distances(self, medium_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(
            medium_social_graph
        )
        rng = np.random.default_rng(1)
        candidates = [int(v) for v in rng.integers(0, medium_social_graph.num_vertices, 60)]
        top = index.top_k_closest(9, candidates, 10)
        assert len(top) == 10
        distances = [d for _, d in top]
        assert distances == sorted(distances)
        # Every returned distance is no larger than any excluded candidate's.
        excluded = set(candidates) - {v for v, _ in top}
        worst_included = max(distances)
        for vertex in excluded:
            assert index.distance(9, vertex) >= worst_included

    def test_k_larger_than_candidates(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        top = index.top_k_closest(0, [1, 2, 3], 10)
        assert len(top) == 3

    def test_k_zero(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        assert index.top_k_closest(0, [1, 2, 3], 0) == []

    def test_unreachable_candidates_sort_last(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        top = index.top_k_closest(0, [1, 2, 3, 4], 4)
        assert top[0][0] in (1, 2)
        assert np.isinf(top[-1][1])

"""Tests for the baseline distance-query methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    APSPOracle,
    BidirectionalBFSOracle,
    HierarchicalHubLabeling,
    LandmarkOracle,
    OnlineBFSOracle,
    OnlineDijkstraOracle,
    TreeDecompositionOracle,
)
from repro.errors import IndexBuildError, IndexStateError
from repro.generators import barabasi_albert_graph, grid_graph, watts_strogatz_graph
from repro.graph.csr import Graph
from repro.graph.traversal import dijkstra_distances
from tests.conftest import exact_distances, random_test_graphs, sample_pairs


class TestAPSPOracle:
    def test_matches_bfs(self, small_social_graph):
        oracle = APSPOracle().build(small_social_graph)
        truth = exact_distances(small_social_graph)
        assert np.array_equal(oracle.matrix, truth)
        assert oracle.distance(0, 5) == truth[0, 5]

    def test_weighted_mode(self, small_weighted_graph):
        oracle = APSPOracle(weighted=True).build(small_weighted_graph)
        truth = dijkstra_distances(small_weighted_graph, 3)
        assert np.allclose(oracle.matrix[3], truth)

    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            APSPOracle().distance(0, 1)

    def test_index_size(self, small_social_graph):
        oracle = APSPOracle().build(small_social_graph)
        assert oracle.index_size_bytes() == oracle.matrix.nbytes
        assert oracle.build_seconds > 0


class TestOnlineOracles:
    def test_bfs_oracle_exact(self, medium_social_graph):
        oracle = OnlineBFSOracle().build(medium_social_graph)
        truth = exact_distances(medium_social_graph)
        for s, t in sample_pairs(medium_social_graph, 40, seed=0):
            assert oracle.distance(s, t) == truth[s, t]

    def test_bidirectional_oracle_exact(self, medium_social_graph):
        oracle = BidirectionalBFSOracle().build(medium_social_graph)
        truth = exact_distances(medium_social_graph)
        for s, t in sample_pairs(medium_social_graph, 40, seed=1):
            assert oracle.distance(s, t) == truth[s, t]

    def test_dijkstra_oracle_exact(self, small_weighted_graph):
        oracle = OnlineDijkstraOracle().build(small_weighted_graph)
        for s, t in sample_pairs(small_weighted_graph, 30, seed=2):
            assert np.isclose(
                oracle.distance(s, t), dijkstra_distances(small_weighted_graph, s)[t]
            )

    def test_no_index_cost(self, small_social_graph):
        oracle = OnlineBFSOracle().build(small_social_graph)
        assert oracle.index_size_bytes() == 0
        assert oracle.build_seconds == 0.0

    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            OnlineBFSOracle().distance(0, 1)

    def test_batch(self, small_social_graph):
        oracle = BidirectionalBFSOracle().build(small_social_graph)
        pairs = sample_pairs(small_social_graph, 10, seed=3)
        assert oracle.distances(pairs).shape[0] == 10


class TestLandmarkOracle:
    def test_estimate_is_upper_bound(self, medium_social_graph):
        oracle = LandmarkOracle(8, strategy="degree").build(medium_social_graph)
        truth = exact_distances(medium_social_graph)
        for s, t in sample_pairs(medium_social_graph, 100, seed=4):
            estimate = oracle.estimate(s, t)
            lower = oracle.lower_bound(s, t)
            if np.isfinite(truth[s, t]):
                assert estimate >= truth[s, t]
                assert lower <= truth[s, t]

    def test_degree_landmarks_beat_random(self, medium_social_graph):
        """Central landmarks give better exact fractions (paper Section 2.2 / 7.3.4)."""
        truth = exact_distances(medium_social_graph)
        pairs = sample_pairs(medium_social_graph, 300, seed=5)
        true_list = [truth[s, t] for s, t in pairs]
        degree = LandmarkOracle(16, strategy="degree").build(medium_social_graph)
        random = LandmarkOracle(16, strategy="random", seed=3).build(medium_social_graph)
        assert degree.exact_fraction(pairs, true_list) >= random.exact_fraction(
            pairs, true_list
        )

    def test_self_distance(self, small_social_graph):
        oracle = LandmarkOracle(4).build(small_social_graph)
        assert oracle.estimate(3, 3) == 0.0

    def test_exact_fraction_validation(self, small_social_graph):
        oracle = LandmarkOracle(4).build(small_social_graph)
        with pytest.raises(IndexBuildError):
            oracle.exact_fraction([(0, 1)], [1.0, 2.0])

    def test_mean_relative_error_nonnegative(self, medium_social_graph):
        oracle = LandmarkOracle(8).build(medium_social_graph)
        truth = exact_distances(medium_social_graph)
        pairs = sample_pairs(medium_social_graph, 100, seed=6)
        error = oracle.mean_relative_error(pairs, [truth[s, t] for s, t in pairs])
        assert error >= 0.0

    def test_invalid_landmark_count(self):
        with pytest.raises(IndexBuildError):
            LandmarkOracle(0)

    def test_landmarks_exposed(self, small_social_graph):
        oracle = LandmarkOracle(4).build(small_social_graph)
        assert oracle.landmarks.shape[0] == 4
        assert oracle.index_size_bytes() > 0


class TestHierarchicalHubLabeling:
    def test_exactness(self):
        for graph in random_test_graphs(3, seed=31):
            oracle = HierarchicalHubLabeling(num_sample_pairs=300).build(graph)
            truth = exact_distances(graph)
            for s, t in sample_pairs(graph, 80, seed=32):
                assert oracle.distance(s, t) == truth[s, t]

    def test_dnf_above_cap(self):
        graph = barabasi_albert_graph(120, 2, seed=0)
        with pytest.raises(IndexBuildError):
            HierarchicalHubLabeling(max_vertices=100).build(graph)

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            HierarchicalHubLabeling().build(graph)

    def test_slower_than_pll(self, medium_social_graph):
        """The HHL baseline pays for its global preprocessing (Θ(nm) BFS phase)."""
        import time

        from repro.core.index import PrunedLandmarkLabeling

        start = time.perf_counter()
        PrunedLandmarkLabeling().build(medium_social_graph)
        pll_seconds = time.perf_counter() - start

        oracle = HierarchicalHubLabeling().build(medium_social_graph)
        assert oracle.build_seconds > pll_seconds

    def test_introspection(self, small_social_graph):
        oracle = HierarchicalHubLabeling().build(small_social_graph)
        assert oracle.average_label_size() >= 1.0
        assert oracle.index_size_bytes() > 0
        assert oracle.hierarchy.shape[0] == small_social_graph.num_vertices
        assert oracle.distances([(0, 1)]).shape[0] == 1


class TestTreeDecompositionOracle:
    def test_exactness_on_random_graphs(self):
        for graph in random_test_graphs(4, seed=41):
            oracle = TreeDecompositionOracle(max_width=6).build(graph)
            truth = exact_distances(graph)
            for s, t in sample_pairs(graph, 80, seed=42):
                assert oracle.distance(s, t) == truth[s, t]

    def test_exactness_on_fringe_heavy_graph(self):
        """Small-world ring graphs eliminate almost entirely into the fringe."""
        graph = watts_strogatz_graph(150, 4, 0.1, seed=2)
        oracle = TreeDecompositionOracle(max_width=6).build(graph)
        truth = exact_distances(graph)
        for s, t in sample_pairs(graph, 120, seed=43):
            assert oracle.distance(s, t) == truth[s, t]

    def test_exactness_on_weighted_graph(self):
        graph = grid_graph(6, 6, weighted=True, seed=3)
        oracle = TreeDecompositionOracle(max_width=5).build(graph)
        for s, t in sample_pairs(graph, 60, seed=44):
            truth = dijkstra_distances(graph, s)[t]
            got = oracle.distance(s, t)
            assert np.isclose(got, truth) or (np.isinf(got) and np.isinf(truth))

    def test_core_plus_eliminated_covers_graph(self, medium_social_graph):
        oracle = TreeDecompositionOracle().build(medium_social_graph)
        assert (
            oracle.core_size + oracle.num_eliminated
            == medium_social_graph.num_vertices
        )

    def test_dnf_above_core_cap(self, medium_social_graph):
        with pytest.raises(IndexBuildError):
            TreeDecompositionOracle(max_width=1, max_core_vertices=10).build(
                medium_social_graph
            )

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            TreeDecompositionOracle().build(graph)

    def test_invalid_width(self):
        with pytest.raises(IndexBuildError):
            TreeDecompositionOracle(max_width=0)

    def test_self_and_disconnected(self, disconnected_graph):
        oracle = TreeDecompositionOracle().build(disconnected_graph)
        assert oracle.distance(2, 2) == 0.0
        assert oracle.distance(0, 4) == float("inf")

    def test_index_size_positive(self, small_social_graph):
        oracle = TreeDecompositionOracle().build(small_social_graph)
        assert oracle.index_size_bytes() > 0
        assert oracle.build_seconds > 0

"""Unit tests for label storage (LabelAccumulator / LabelSet)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labels import INF_DISTANCE, LabelAccumulator, LabelSet
from repro.errors import IndexBuildError


def build_tiny_labelset() -> LabelSet:
    """Labels for a path 0-1-2 processed in order [1, 0, 2] (1 is most central)."""
    accumulator = LabelAccumulator(3)
    # BFS from vertex 1 (rank 0) reaches everything.
    accumulator.append(1, 0, 0)
    accumulator.append(0, 0, 1)
    accumulator.append(2, 0, 1)
    # BFS from vertex 0 (rank 1): only itself survives pruning.
    accumulator.append(0, 1, 0)
    # BFS from vertex 2 (rank 2): only itself survives pruning.
    accumulator.append(2, 2, 0)
    return accumulator.freeze(np.array([1, 0, 2]))


class TestLabelAccumulator:
    def test_append_and_sizes(self):
        accumulator = LabelAccumulator(3)
        accumulator.append(0, 0, 0)
        accumulator.append(0, 1, 2)
        assert accumulator.label_size(0) == 2
        assert accumulator.label_size(1) == 0
        assert accumulator.total_entries() == 2

    def test_entries_iteration(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(1, 0, 3)
        accumulator.append(1, 4, 1)
        assert list(accumulator.entries(1)) == [(0, 3), (4, 1)]

    def test_rank_order_enforced(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(0, 5, 1)
        with pytest.raises(IndexBuildError):
            accumulator.append(0, 3, 1)

    def test_distance_overflow_rejected(self):
        accumulator = LabelAccumulator(1)
        with pytest.raises(IndexBuildError):
            accumulator.append(0, 0, int(INF_DISTANCE))

    def test_freeze_produces_labelset(self):
        labels = build_tiny_labelset()
        assert isinstance(labels, LabelSet)
        assert labels.num_vertices == 3


class TestLabelSet:
    def test_label_sizes(self):
        labels = build_tiny_labelset()
        assert labels.label_size(1) == 1
        assert labels.label_size(0) == 2
        assert labels.total_entries() == 5
        assert labels.average_label_size() == pytest.approx(5 / 3)

    def test_vertex_label_views(self):
        labels = build_tiny_labelset()
        hubs, dists = labels.vertex_label(0)
        assert list(hubs) == [0, 1]
        assert list(dists) == [1, 0]

    def test_vertex_label_as_vertices(self):
        labels = build_tiny_labelset()
        entries = labels.vertex_label_as_vertices(2)
        assert entries == [(1, 1), (2, 0)]

    def test_query_exact_distances(self):
        labels = build_tiny_labelset()
        assert labels.query(0, 2) == 2.0
        assert labels.query(0, 1) == 1.0
        assert labels.query(1, 2) == 1.0
        assert labels.query(0, 0) == 0.0

    def test_query_via_returns_hub(self):
        labels = build_tiny_labelset()
        distance, hub = labels.query_via(0, 2)
        assert distance == 2.0
        assert hub == 1

    def test_query_disjoint_labels_is_inf(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(0, 0, 0)
        accumulator.append(1, 1, 0)
        labels = accumulator.freeze(np.array([0, 1]))
        assert labels.query(0, 1) == float("inf")
        assert labels.query_via(0, 1) == (float("inf"), None)

    def test_query_many(self):
        labels = build_tiny_labelset()
        results = labels.query_many([(0, 2), (1, 2), (0, 0)])
        assert list(results) == [2.0, 1.0, 0.0]

    def test_rank_and_order_are_inverse(self):
        labels = build_tiny_labelset()
        assert np.array_equal(labels.order[labels.rank], np.arange(3))

    def test_nbytes_positive(self):
        labels = build_tiny_labelset()
        assert labels.nbytes() > 0

    def test_hub_ranks_sorted_per_vertex(self):
        labels = build_tiny_labelset()
        for v in range(labels.num_vertices):
            hubs, _ = labels.vertex_label(v)
            assert np.all(np.diff(hubs) > 0)

    def test_empty_labelset(self):
        accumulator = LabelAccumulator(0)
        labels = accumulator.freeze(np.zeros(0, dtype=np.int64))
        assert labels.num_vertices == 0
        assert labels.average_label_size() == 0.0

"""Unit tests for label storage (LabelAccumulator / LabelSet)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labels import INF_DISTANCE, LabelAccumulator, LabelSet
from repro.errors import IndexBuildError


def build_tiny_labelset() -> LabelSet:
    """Labels for a path 0-1-2 processed in order [1, 0, 2] (1 is most central)."""
    accumulator = LabelAccumulator(3)
    # BFS from vertex 1 (rank 0) reaches everything.
    accumulator.append(1, 0, 0)
    accumulator.append(0, 0, 1)
    accumulator.append(2, 0, 1)
    # BFS from vertex 0 (rank 1): only itself survives pruning.
    accumulator.append(0, 1, 0)
    # BFS from vertex 2 (rank 2): only itself survives pruning.
    accumulator.append(2, 2, 0)
    return accumulator.freeze(np.array([1, 0, 2]))


class TestLabelAccumulator:
    def test_append_and_sizes(self):
        accumulator = LabelAccumulator(3)
        accumulator.append(0, 0, 0)
        accumulator.append(0, 1, 2)
        assert accumulator.label_size(0) == 2
        assert accumulator.label_size(1) == 0
        assert accumulator.total_entries() == 2

    def test_entries_iteration(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(1, 0, 3)
        accumulator.append(1, 4, 1)
        assert list(accumulator.entries(1)) == [(0, 3), (4, 1)]

    def test_rank_order_enforced(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(0, 5, 1)
        with pytest.raises(IndexBuildError):
            accumulator.append(0, 3, 1)

    def test_distance_overflow_rejected(self):
        accumulator = LabelAccumulator(1)
        with pytest.raises(IndexBuildError):
            accumulator.append(0, 0, int(INF_DISTANCE))

    def test_freeze_produces_labelset(self):
        labels = build_tiny_labelset()
        assert isinstance(labels, LabelSet)
        assert labels.num_vertices == 3


class TestLabelSet:
    def test_label_sizes(self):
        labels = build_tiny_labelset()
        assert labels.label_size(1) == 1
        assert labels.label_size(0) == 2
        assert labels.total_entries() == 5
        assert labels.average_label_size() == pytest.approx(5 / 3)

    def test_vertex_label_views(self):
        labels = build_tiny_labelset()
        hubs, dists = labels.vertex_label(0)
        assert list(hubs) == [0, 1]
        assert list(dists) == [1, 0]

    def test_vertex_label_as_vertices(self):
        labels = build_tiny_labelset()
        entries = labels.vertex_label_as_vertices(2)
        assert entries == [(1, 1), (2, 0)]

    def test_query_exact_distances(self):
        labels = build_tiny_labelset()
        assert labels.query(0, 2) == 2.0
        assert labels.query(0, 1) == 1.0
        assert labels.query(1, 2) == 1.0
        assert labels.query(0, 0) == 0.0

    def test_query_via_returns_hub(self):
        labels = build_tiny_labelset()
        distance, hub = labels.query_via(0, 2)
        assert distance == 2.0
        assert hub == 1

    def test_query_disjoint_labels_is_inf(self):
        accumulator = LabelAccumulator(2)
        accumulator.append(0, 0, 0)
        accumulator.append(1, 1, 0)
        labels = accumulator.freeze(np.array([0, 1]))
        assert labels.query(0, 1) == float("inf")
        assert labels.query_via(0, 1) == (float("inf"), None)

    def test_query_many(self):
        labels = build_tiny_labelset()
        results = labels.query_many([(0, 2), (1, 2), (0, 0)])
        assert list(results) == [2.0, 1.0, 0.0]

    def test_rank_and_order_are_inverse(self):
        labels = build_tiny_labelset()
        assert np.array_equal(labels.order[labels.rank], np.arange(3))

    def test_nbytes_positive(self):
        labels = build_tiny_labelset()
        assert labels.nbytes() > 0

    def test_hub_ranks_sorted_per_vertex(self):
        labels = build_tiny_labelset()
        for v in range(labels.num_vertices):
            hubs, _ = labels.vertex_label(v)
            assert np.all(np.diff(hubs) > 0)

    def test_empty_labelset(self):
        accumulator = LabelAccumulator(0)
        labels = accumulator.freeze(np.zeros(0, dtype=np.int64))
        assert labels.num_vertices == 0
        assert labels.average_label_size() == 0.0


class TestLabelSetPatched:
    def test_empty_updates_returns_self(self):
        labels = build_tiny_labelset()
        assert labels.patched({}) is labels

    def test_patch_matches_from_lists(self):
        labels = build_tiny_labelset()
        # Replace vertex 0's label: grow it.  Replace vertex 2's: shrink it.
        updates = {0: ([0, 1, 2], [2, 0, 3]), 2: ([2], [0])}
        patched = labels.patched(updates)
        expected = LabelSet.from_lists(
            [[0, 1, 2], [0], [2]],
            [[2, 0, 3], [0], [0]],
            np.array([1, 0, 2]),
        )
        assert np.array_equal(patched.indptr, expected.indptr)
        assert np.array_equal(patched.hub_ranks, expected.hub_ranks)
        assert np.array_equal(patched.distances, expected.distances)
        assert np.array_equal(patched.order, labels.order)

    def test_receiver_is_not_mutated(self):
        labels = build_tiny_labelset()
        before = (labels.hub_ranks.copy(), labels.distances.copy())
        labels.patched({1: ([0, 1], [1, 4])})
        assert np.array_equal(labels.hub_ranks, before[0])
        assert np.array_equal(labels.distances, before[1])

    def test_patch_to_empty_label(self):
        labels = build_tiny_labelset()
        patched = labels.patched({1: ([], [])})
        assert patched.label_size(1) == 0
        assert patched.total_entries() == labels.total_entries() - 1
        assert patched.query(0, 2) == 2.0  # untouched vertices still answer

    def test_out_of_range_vertex_rejected(self):
        labels = build_tiny_labelset()
        with pytest.raises(IndexBuildError):
            labels.patched({7: ([0], [0])})
        with pytest.raises(IndexBuildError):
            labels.patched({-1: ([0], [0])})

    def test_random_patches_match_full_rebuild(self):
        rng = np.random.default_rng(3)
        n = 40
        order = rng.permutation(n).astype(np.int64)
        def random_label():
            size = int(rng.integers(0, 6))
            hubs = sorted(rng.choice(n, size=size, replace=False).tolist())
            return hubs, rng.integers(0, 30, size=size).tolist()
        base_labels = [random_label() for _ in range(n)]
        labels = LabelSet.from_lists(
            [h for h, _ in base_labels], [d for _, d in base_labels], order
        )
        for _ in range(5):
            dirty = rng.choice(n, size=int(rng.integers(1, 8)), replace=False)
            updates = {int(v): random_label() for v in dirty}
            for vertex, (hubs, dists) in updates.items():
                base_labels[vertex] = (hubs, dists)
            labels = labels.patched(updates)
            expected = LabelSet.from_lists(
                [h for h, _ in base_labels], [d for _, d in base_labels], order
            )
            assert np.array_equal(labels.indptr, expected.indptr)
            assert np.array_equal(labels.hub_ranks, expected.hub_ranks)
            assert np.array_equal(labels.distances, expected.distances)


class TestQueryOneToManyEmptyGroups:
    """Regression: reduceat start-clipping used to truncate the reduce window
    of the last non-empty label segment whenever trailing vertices had empty
    labels, silently dropping that segment's final (often minimal) entry."""

    def test_last_nonempty_vertex_followed_by_empty_labels(self):
        # Vertex 1's best (and last) entry is hub rank 2; vertex 2 has an
        # empty label behind it, which used to clip the window short.
        labels = LabelSet.from_lists(
            [[0, 1, 2], [0, 2], []],
            [[0, 5, 1], [9, 1], []],
            np.array([0, 1, 2]),
        )
        result = labels.query_one_to_many(0)
        assert result[1] == 2.0  # via hub rank 2: 1 + 1, not 9 via hub 0
        assert result[2] == float("inf")

    def test_matches_scalar_query_with_empty_labels(self):
        rng = np.random.default_rng(17)
        n = 25
        labels_per_vertex = []
        for _ in range(n):
            size = int(rng.integers(0, 4))  # empty labels are common
            hubs = sorted(rng.choice(n, size=size, replace=False).tolist())
            labels_per_vertex.append(
                (hubs, rng.integers(0, 9, size=size).tolist())
            )
        labels = LabelSet.from_lists(
            [h for h, _ in labels_per_vertex],
            [d for _, d in labels_per_vertex],
            np.arange(n, dtype=np.int64),
        )
        for source in range(0, n, 3):
            batch = labels.query_one_to_many(source)
            for target in range(n):
                expected = labels.query(source, target)
                if source == target:
                    continue  # one-to-many pins the source slot to 0.0
                assert batch[target] == expected, (source, target)

"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestBuildAndQuery:
    def test_build_then_query(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"

        assert main(
            ["build", str(edge_path), "-o", str(index_path), "--bit-parallel", "2"]
        ) == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "indexed" in out

        assert main(["query", str(index_path), "0,5", "3,7"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        source, target, distance = lines[0].split("\t")
        assert (source, target) == ("0", "5")
        assert distance not in ("", "inf")

    def test_build_raw_layout_and_mmap_query(
        self, tmp_path, small_social_graph, capsys
    ):
        """A non-.npz output selects the raw layout, which --mmap loads zero-copy."""
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.pll"

        assert main(["build", str(edge_path), "-o", str(index_path)]) == 0
        capsys.readouterr()
        assert main(["query", "--mmap", str(index_path), "0,5", "3,7"]) == 0
        mmap_lines = capsys.readouterr().out.strip().splitlines()
        assert main(["query", str(index_path), "0,5", "3,7"]) == 0
        heap_lines = capsys.readouterr().out.strip().splitlines()
        assert mmap_lines == heap_lines
        assert len(mmap_lines) == 2

    def test_query_mmap_rejects_npz(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", "--mmap", str(index_path), "0,5"]) == 2
        assert "memory-mapped" in capsys.readouterr().err

    def test_query_bad_pair_format(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path), "0-5-7"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "0-5-7" in err

    def test_query_non_integer_pair(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path), "a,b"]) == 2
        assert "must be integers" in capsys.readouterr().err

    def test_query_out_of_range_vertex(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path), "0,999999"]) == 2
        err = capsys.readouterr().err
        assert "out of range" in err and "999999" in err

    def test_query_missing_index_file(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "missing.npz"), "0,1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_query_vertex_id_beyond_int64(self, tmp_path, small_social_graph, capsys):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        index_path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(index_path)])
        capsys.readouterr()
        huge = str(10**30)
        assert main(["query", str(index_path), f"0,{huge}"]) == 2
        assert "does not fit 64 bits" in capsys.readouterr().err


class TestServeCommand:
    @pytest.fixture
    def index_path(self, tmp_path, small_social_graph):
        edge_path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, edge_path)
        path = tmp_path / "index.npz"
        main(["build", str(edge_path), "-o", str(path), "--bit-parallel", "2"])
        return path

    def test_serve_stdio_session(self, index_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\n0,5\nSTATS\nQUIT\n"))
        assert main(["serve", str(index_path)]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert lines[0].startswith("0\t5\t")
        assert lines[1] == lines[0]
        assert '"num_queries"' in lines[2]
        assert "serving" in captured.err
        assert "served" in captured.err

    def test_serve_sharded_workers(self, index_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nSTATS\nQUIT\n"))
        assert main(["serve", str(index_path), "--workers", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0].startswith("0\t5\t")
        assert "workers=2" in captured.err

    def test_serve_rejects_bad_worker_count(self, index_path, capsys):
        assert main(["serve", str(index_path), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_missing_index(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.npz")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_cache_disabled(self, index_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nQUIT\n"))
        assert main(["serve", str(index_path), "--cache-size", "0"]) == 0
        assert capsys.readouterr().out.startswith("0\t5\t")

    def test_serve_explicit_kernel(self, index_path, capsys, monkeypatch):
        import io

        from repro.core.kernels import kernel_preference

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nQUIT\n"))
        assert main(["serve", str(index_path), "--kernel", "numpy"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("0\t5\t")
        assert "kernel=numpy" in captured.err
        # The process-wide preference must not leak out of the serve call.
        assert kernel_preference() == "auto"

    def test_serve_unavailable_kernel_exits_cleanly(self, index_path, capsys):
        from repro.core.kernels.numba_kernel import numba_installed

        if numba_installed():
            pytest.skip("needs a numba-free host")
        assert main(["serve", str(index_path), "--kernel", "numba"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "numba" in err and "accel" in err

    def test_serve_kernel_rejects_unknown_name(self, index_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", str(index_path), "--kernel", "vulkan"])

    def test_serve_requires_exactly_one_input(self, index_path, tmp_path, capsys):
        assert main(["serve"]) == 2
        assert "exactly one input" in capsys.readouterr().err
        edge_path = tmp_path / "g.txt"
        edge_path.write_text("0 1\n")
        assert main(["serve", str(index_path), "--edge-list", str(edge_path)]) == 2
        assert "exactly one input" in capsys.readouterr().err

    def test_serve_edge_list_with_mutations(self, tmp_path, capsys, monkeypatch):
        import io

        edge_path = tmp_path / "g.txt"
        edge_path.write_text("0 1\n1 2\n2 3\n3 4\n")
        mutations_path = tmp_path / "muts.txt"
        mutations_path.write_text(
            "# evolve the path graph\nremove 2 3\nadd 0 4\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO("2 3\n0 4\nQUIT\n"))
        assert main([
            "serve",
            "--edge-list", str(edge_path),
            "--mutations", str(mutations_path),
        ]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        # The deletion is live: 2-3 now routes 2-1-0-4-3 over the new edge.
        assert lines[0] == "2\t3\t4"
        assert lines[1] == "0\t4\t1"     # insertion is live
        assert "replayed" in captured.err
        assert "1 insertions, 1 deletions" in captured.err

    def test_serve_live_mutation_session(self, tmp_path, capsys, monkeypatch):
        import io

        edge_path = tmp_path / "g.txt"
        edge_path.write_text("0 1\n1 2\n")
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("0 2\nremove 1 2\npublish\n0 2\nQUIT\n"),
        )
        assert main(["serve", "--edge-list", str(edge_path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "0\t2\t2"
        assert lines[1].startswith("ok remove")
        assert lines[2] == "ok published version=2"
        assert lines[3] == "0\t2\tinf"

    def test_serve_mutations_require_edge_list(self, index_path, tmp_path, capsys):
        mutations_path = tmp_path / "muts.txt"
        mutations_path.write_text("add 0 1\n")
        assert main([
            "serve", str(index_path), "--mutations", str(mutations_path)
        ]) == 2
        assert "no writable shadow index" in capsys.readouterr().err

    def test_serve_missing_mutations_file(self, tmp_path, capsys):
        edge_path = tmp_path / "g.txt"
        edge_path.write_text("0 1\n")
        assert main([
            "serve",
            "--edge-list", str(edge_path),
            "--mutations", str(tmp_path / "nope.txt"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_async_requires_port(self, index_path, capsys):
        assert main(["serve", str(index_path), "--async"]) == 2
        assert "requires --port" in capsys.readouterr().err

    def test_serve_http_port_requires_async(self, index_path, capsys):
        assert main(["serve", str(index_path), "--http-port", "0"]) == 2
        assert "--async" in capsys.readouterr().err

    def test_serve_warm_requires_cache(self, index_path, tmp_path, capsys):
        warm_path = tmp_path / "warm.txt"
        warm_path.write_text("0 5\n")
        assert main([
            "serve", str(index_path),
            "--warm", str(warm_path),
            "--cache-size", "0",
        ]) == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_serve_warm_missing_file(self, index_path, tmp_path, capsys):
        assert main([
            "serve", str(index_path), "--warm", str(tmp_path / "nope.txt")
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_warm_replays_before_listening(
        self, index_path, tmp_path, capsys, monkeypatch
    ):
        import io

        warm_path = tmp_path / "warm.txt"
        warm_path.write_text("# hot pairs\n0 5\n0,5\n3 7\n")
        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nQUIT\n"))
        assert main(["serve", str(index_path), "--warm", str(warm_path)]) == 0
        captured = capsys.readouterr()
        assert "warmed cache from" in captured.err
        assert "3 pairs replayed" in captured.err
        # The served query hits the warmed cache.
        assert captured.out.splitlines()[0].startswith("0\t5\t")

    def test_serve_log_json_and_slow_query_log(self, index_path, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nTRACES\nQUIT\n"))
        assert main([
            "serve", str(index_path), "--log-json", "--slow-ms", "0"
        ]) == 0
        captured = capsys.readouterr()
        # Every stderr line is one JSON event — no human-readable prose left.
        events = [json.loads(line) for line in captured.err.splitlines() if line]
        names = [event["event"] for event in events]
        assert "serve_start" in names
        assert "listening" in names
        assert "serve_done" in names
        # --slow-ms 0 makes every request slow; the slow log fired.
        slow = [e for e in events if e["event"] == "slow_query"]
        assert slow and slow[0]["component"] == "slow-query"
        assert "trace_id" in slow[0]
        # The TRACES wire command serves the ring over stdio too.
        payload = json.loads(captured.out.splitlines()[1])
        assert payload["num_recorded"] == 1
        assert payload["slow_threshold_ms"] == 0.0

    def _stats_from_session(self, capsys):
        import json

        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        return json.loads(lines[-1])

    def test_serve_gc_monitor_enables_and_tears_down(
        self, index_path, capsys, monkeypatch
    ):
        import gc
        import io

        callbacks_before = len(gc.callbacks)
        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nSTATS\nQUIT\n"))
        assert main(["serve", str(index_path), "--gc-monitor"]) == 0
        # The pause series only exist while the hook is installed.
        stats = self._stats_from_session(capsys)
        assert "gc_pauses_total" in stats
        assert "gc_pause_seconds_total" in stats
        # The process-wide gc callback must not leak out of the serve call.
        assert len(gc.callbacks) == callbacks_before

    def test_serve_without_gc_monitor_has_no_pause_series(
        self, index_path, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("STATS\nQUIT\n"))
        assert main(["serve", str(index_path)]) == 0
        # "Not measured" rather than an eternally-zero counter.
        assert "gc_pauses_total" not in self._stats_from_session(capsys)

    def test_serve_shadow_sample_session(self, index_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\n1 6\nSTATS\nQUIT\n"))
        assert main(["serve", str(index_path), "--shadow-sample", "1.0"]) == 0
        stats = self._stats_from_session(capsys)
        assert stats["shadow_mismatches_total"] == 0.0
        assert "shadow_pairs_total" in stats
        # The health engine rides along at its default interval.
        assert "alerts_firing" in stats

    def test_serve_health_interval_zero_disables_engine(
        self, index_path, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("STATS\nQUIT\n"))
        assert main(["serve", str(index_path), "--health-interval", "0"]) == 0
        stats = self._stats_from_session(capsys)
        assert "alerts_firing" not in stats

    def test_serve_alerts_wire_verb_over_stdio(
        self, index_path, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("ALERTS\nQUIT\n"))
        assert main(["serve", str(index_path)]) == 0
        report = self._stats_from_session(capsys)
        assert report["enabled"] is True
        assert {rule["alertname"] for rule in report["rules"]} >= {
            "LatencySLOBurnRate",
            "ShadowMismatch",
        }

    def test_serve_shadow_sample_rejects_out_of_range(self, index_path, capsys):
        assert main(["serve", str(index_path), "--shadow-sample", "1.5"]) == 2
        assert "--shadow-sample" in capsys.readouterr().err
        assert main(["serve", str(index_path), "--shadow-sample", "-0.5"]) == 2

    def test_serve_health_interval_rejects_negative(self, index_path, capsys):
        assert main(["serve", str(index_path), "--health-interval", "-1"]) == 2
        assert "--health-interval" in capsys.readouterr().err

    def test_serve_slow_ms_without_log_json_keeps_human_messages(
        self, index_path, capsys, monkeypatch
    ):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\nQUIT\n"))
        assert main(["serve", str(index_path), "--slow-ms", "0"]) == 0
        captured = capsys.readouterr()
        assert "serving" in captured.err  # human announcements stay
        slow_lines = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        assert any(event["event"] == "slow_query" for event in slow_lines)

    def test_serve_async_session_over_subprocess(self, tmp_path):
        """End to end: --async serves TCP + HTTP admin plane, SIGTERM drains."""
        import json
        import os
        import re
        import signal
        import socket
        import subprocess
        import sys as _sys

        edge_path = tmp_path / "g.txt"
        edge_path.write_text("0 1\n1 2\n2 3\n")
        # Warm the (0, 3) pair at version 1 (distance 3), then replay a
        # mutation file whose publish makes it 1 — the served answer must be
        # the post-replay one, not the stale warmed entry.
        warm_path = tmp_path / "warm.txt"
        warm_path.write_text("0 3\n")
        mutations_path = tmp_path / "muts.txt"
        mutations_path.write_text("add 0 3\npublish\n")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                _sys.executable, "-m", "repro.cli", "serve",
                "--edge-list", str(edge_path),
                "--async", "--port", "0", "--http-port", "0",
                "--warm", str(warm_path),
                "--mutations", str(mutations_path),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            port = http_port = None
            for _ in range(50):
                line = proc.stderr.readline()
                match = re.search(r"listening on 127\.0\.0\.1:(\d+) \(async\)", line)
                if match:
                    port = int(match.group(1))
                match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
                if match:
                    http_port = int(match.group(1))
                    break
            assert port is not None and http_port is not None

            with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
                conn.settimeout(10)
                conn.sendall(b"0 3\nremove 0 3\npublish\n0 3\n")
                data = b""
                while data.count(b"\n") < 4:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                replies = data.decode().splitlines()
                # Post-replay distance, not the stale warmed version-1 entry.
                assert replies[0] == "0\t3\t1"
                assert replies[1].startswith("ok remove")
                assert replies[2] == "ok published version=3"
                assert replies[3] == "0\t3\t3"

                with socket.create_connection(
                    ("127.0.0.1", http_port), timeout=10
                ) as admin:
                    admin.settimeout(10)
                    admin.sendall(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                        b"Connection: close\r\n\r\n"
                    )
                    raw = b""
                    while True:
                        chunk = admin.recv(4096)
                        if not chunk:
                            break
                        raw += chunk
                health = json.loads(raw.partition(b"\r\n\r\n")[2])
                assert health["status"] == "ok"
                assert health["snapshot_version"] == 3

                # Graceful drain: the open connection sees EOF, exit code 0.
                proc.send_signal(signal.SIGTERM)
                assert conn.recv(4096) == b""
            assert proc.wait(timeout=30) == 0
            assert "served" in proc.stderr.read()
        finally:
            if proc.poll() is None:  # pragma: no cover - only on test failure
                proc.kill()
                proc.wait(timeout=10)


class TestDatasetsCommand:
    def test_lists_builtin_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "gnutella" in out and "hollywood" in out

    def test_size_class_filter(self, capsys):
        assert main(["datasets", "--size-class", "large"]) == 0
        out = capsys.readouterr().out
        assert "hollywood" in out
        assert "gnutella" not in out


class TestExperimentCommand:
    def test_table4_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "table4.csv"
        code = main(
            [
                "experiment",
                "table4",
                "--datasets",
                "gnutella",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_table5_command(self, capsys):
        code = main(["experiment", "table5", "--datasets", "notredame"])
        assert code == 0
        assert "Table 5" in capsys.readouterr().out

    def test_ablation_pruning_command(self, capsys):
        code = main(["experiment", "ablation-pruning", "--datasets", "notredame"])
        assert code == 0
        assert "pruning" in capsys.readouterr().out

    def test_seed_flag_is_reproducible(self, capsys):
        assert (
            main(["experiment", "table4", "--datasets", "gnutella", "--seed", "7"]) == 0
        )
        first = capsys.readouterr().out
        assert (
            main(["experiment", "table4", "--datasets", "gnutella", "--seed", "7"]) == 0
        )
        assert capsys.readouterr().out == first


class TestBenchCommand:
    """The ``repro-pll bench`` surface, run against a fake suite directory."""

    FAKE = (
        "from repro.obs import bench_result\n"
        "def collect_results(*, smoke=False):\n"
        "    return bench_result(\n"
        "        'kernels',\n"
        "        [{'name': 'qps', 'value': %s, 'higher_is_better': True}],\n"
        "        smoke=smoke,\n"
        "    )\n"
    )

    @pytest.fixture
    def fake_bench_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        return tmp_path

    def _write_suite(self, directory, value):
        (directory / "bench_kernels.py").write_text(self.FAKE % value)

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("kernels", "async", "table1", "ablations"):
            assert name in out

    def test_bench_run_writes_schema_valid_results(
        self, fake_bench_dir, tmp_path, capsys
    ):
        from repro.obs import read_result

        self._write_suite(fake_bench_dir, "100.0")
        out_dir = tmp_path / "results"
        code = main(
            ["bench", "run", "--smoke", "--suite", "kernels", "--out", str(out_dir)]
        )
        assert code == 0
        result = read_result(out_dir / "BENCH_kernels.json")
        assert result.suite == "kernels"
        assert result.fingerprint.smoke
        assert "running kernels [smoke]" in capsys.readouterr().out

    def test_bench_run_unknown_suite_exits_2(self, fake_bench_dir, capsys):
        assert main(["bench", "run", "--suite", "bogus"]) == 2
        assert "unknown bench suite" in capsys.readouterr().err

    def test_bench_run_bad_repeat_exits_2(self, capsys):
        assert main(["bench", "run", "--repeat", "0"]) == 2
        assert "--repeat" in capsys.readouterr().err

    def test_bench_compare_detects_injected_slowdown(
        self, fake_bench_dir, tmp_path, capsys
    ):
        self._write_suite(fake_bench_dir, "1000.0")
        base = tmp_path / "base"
        assert main(["bench", "run", "--suite", "kernels", "--out", str(base)]) == 0
        self._write_suite(fake_bench_dir, "500.0")  # inject a 2x slowdown
        cur = tmp_path / "cur"
        assert main(["bench", "run", "--suite", "kernels", "--out", str(cur)]) == 0
        capsys.readouterr()

        assert main(["bench", "compare", str(base), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A run compared against itself must be clean.
        assert main(["bench", "compare", str(base), str(base)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_bench_compare_tolerance_flag_widens_band(
        self, fake_bench_dir, tmp_path, capsys
    ):
        self._write_suite(fake_bench_dir, "1000.0")
        base = tmp_path / "base"
        main(["bench", "run", "--suite", "kernels", "--out", str(base)])
        self._write_suite(fake_bench_dir, "500.0")
        cur = tmp_path / "cur"
        main(["bench", "run", "--suite", "kernels", "--out", str(cur)])
        capsys.readouterr()
        # The multiplicative band admits throughput down to 1000/(1+1.5) = 400.
        assert main(
            ["bench", "compare", str(base), str(cur), "--tolerance", "1.5"]
        ) == 0

    def test_bench_compare_missing_path_exits_2(self, tmp_path, capsys):
        code = main(
            ["bench", "compare", str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bench_report_renders_trend(self, fake_bench_dir, tmp_path, capsys):
        self._write_suite(fake_bench_dir, "100.0")
        hist = tmp_path / "hist"
        main(["bench", "run", "--suite", "kernels", "--out", str(hist / "r1")])
        main(["bench", "run", "--suite", "kernels", "--out", str(hist / "r2")])
        capsys.readouterr()
        assert main(["bench", "report", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "== kernels (2 run(s)) ==" in out

    def test_bench_report_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["bench", "report", str(tmp_path / "none")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_scrape_bad_url_exits_2(self, capsys):
        assert main(["bench", "scrape", "127.0.0.1:1/metrics"]) == 2
        assert "error" in capsys.readouterr().err

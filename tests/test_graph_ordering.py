"""Unit tests for vertex ordering strategies (paper Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.ordering import (
    ORDERING_STRATEGIES,
    closeness_order,
    compute_order,
    degree_order,
    degree_tiebreak_random_order,
    random_order,
    rank_from_order,
)


def assert_is_permutation(order: np.ndarray, n: int) -> None:
    assert order.shape[0] == n
    assert np.array_equal(np.sort(order), np.arange(n))


class TestDegreeOrder:
    def test_highest_degree_first(self, star_graph):
        order = degree_order(star_graph)
        assert order[0] == 0

    def test_is_permutation(self, small_social_graph):
        order = degree_order(small_social_graph)
        assert_is_permutation(order, small_social_graph.num_vertices)

    def test_ties_broken_by_vertex_id(self, cycle_graph):
        order = degree_order(cycle_graph)
        assert list(order) == list(range(6))

    def test_degrees_non_increasing(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        degrees = medium_social_graph.degrees()[order]
        assert np.all(np.diff(degrees) <= 0)

    def test_directed_uses_total_degree(self):
        # Vertex 1 has total degree 2 (two out-edges); vertices 0 and 2 have 1.
        graph = Graph(3, [(1, 0), (1, 2)], directed=True)
        order = degree_order(graph)
        assert order[0] == 1


class TestClosenessOrder:
    def test_central_vertex_first_on_star(self, star_graph):
        order = closeness_order(star_graph, seed=0, num_samples=6)
        assert order[0] == 0

    def test_is_permutation(self, small_social_graph):
        order = closeness_order(small_social_graph, seed=1)
        assert_is_permutation(order, small_social_graph.num_vertices)

    def test_path_graph_centre_first(self, path_graph):
        order = closeness_order(path_graph, seed=0, num_samples=5)
        assert order[0] == 2

    def test_empty_graph(self):
        order = closeness_order(Graph(0, []))
        assert order.shape[0] == 0


class TestRandomOrder:
    def test_is_permutation(self, small_social_graph):
        order = random_order(small_social_graph, seed=3)
        assert_is_permutation(order, small_social_graph.num_vertices)

    def test_seed_determinism(self, small_social_graph):
        a = random_order(small_social_graph, seed=9)
        b = random_order(small_social_graph, seed=9)
        c = random_order(small_social_graph, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestDegreeTiebreakRandom:
    def test_is_permutation(self, small_social_graph):
        order = degree_tiebreak_random_order(small_social_graph, seed=0)
        assert_is_permutation(order, small_social_graph.num_vertices)

    def test_never_reorders_distinct_degrees(self, star_graph):
        order = degree_tiebreak_random_order(star_graph, seed=4)
        assert order[0] == 0


class TestComputeOrder:
    def test_known_strategies_registered(self):
        assert {"degree", "closeness", "random"} <= set(ORDERING_STRATEGIES)

    @pytest.mark.parametrize("strategy", ["degree", "closeness", "random"])
    def test_dispatch(self, small_social_graph, strategy):
        order = compute_order(small_social_graph, strategy, seed=0)
        assert_is_permutation(order, small_social_graph.num_vertices)

    def test_unknown_strategy_raises(self, small_social_graph):
        with pytest.raises(GraphError):
            compute_order(small_social_graph, "pagerank")


class TestRankFromOrder:
    def test_inverse_permutation(self):
        order = np.array([2, 0, 1], dtype=np.int64)
        rank = rank_from_order(order)
        assert list(rank) == [1, 2, 0]

    def test_round_trip(self, small_social_graph):
        order = degree_order(small_social_graph)
        rank = rank_from_order(order)
        assert np.array_equal(order[rank], np.arange(order.shape[0]))

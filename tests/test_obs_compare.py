"""Tests for noise-aware regression detection (``repro-pll bench compare``)."""

from __future__ import annotations

import pytest

from repro.obs import (
    Metric,
    bench_result,
    compare_paths,
    compare_results,
    format_comparisons,
    has_regressions,
    write_result,
)


def _one_metric_result(value, *, hib=True, samples=(), tolerance=None, name="qps"):
    return bench_result(
        "suite",
        [
            Metric(
                name,
                value,
                higher_is_better=hib,
                samples=samples,
                tolerance=tolerance,
            )
        ],
    )


def _verdict(comparisons, name="qps"):
    (match,) = [c for c in comparisons if c.name == name]
    return match


class TestCompareResults:
    def test_true_regression_detected(self):
        """An injected 2x slowdown must gate, whatever the default band."""
        baseline = _one_metric_result(1000.0)
        current = _one_metric_result(500.0)
        comparisons = compare_results(baseline, current)
        assert _verdict(comparisons).status == "regressed"
        assert has_regressions(comparisons)

    def test_improvement_detected_not_gated(self):
        baseline = _one_metric_result(1000.0)
        current = _one_metric_result(1500.0)
        comparisons = compare_results(baseline, current)
        assert _verdict(comparisons).status == "improved"
        assert not has_regressions(comparisons)

    def test_within_noise_jitter_passes(self):
        """A 5% wobble sits inside the default 10% band."""
        baseline = _one_metric_result(1000.0)
        comparisons = compare_results(baseline, _one_metric_result(952.0))
        assert _verdict(comparisons).status == "ok"
        assert not has_regressions(comparisons)

    def test_mad_band_widens_for_noisy_baselines(self):
        """A baseline that jittered 20% between repeats must not gate a 15% dip."""
        baseline = _one_metric_result(
            1200.0, samples=(1000.0, 1200.0, 800.0, 1150.0, 900.0)
        )
        current = _one_metric_result(850.0)
        assert _verdict(compare_results(baseline, current)).status == "ok"

    def test_latency_direction_inverted(self):
        baseline = _one_metric_result(10.0, hib=False, name="p99_ms")
        worse = _one_metric_result(25.0, hib=False, name="p99_ms")
        better = _one_metric_result(5.0, hib=False, name="p99_ms")
        assert _verdict(compare_results(baseline, worse), "p99_ms").status == "regressed"
        assert _verdict(compare_results(baseline, better), "p99_ms").status == "improved"

    def test_loose_tolerance_still_gates_throughput_collapse(self):
        """``tolerance >= 1.0`` must not leave higher-is-better metrics ungated.

        With an additive band, ``median - 3.0 * median`` is negative and a
        rate can never regress; the multiplicative form gates below
        ``median / 4`` instead.  This is the exact CI smoke-gate config.
        """
        baseline = _one_metric_result(100.0)
        collapsed = compare_results(
            baseline, _one_metric_result(0.1), tolerance=3.0
        )
        assert _verdict(collapsed).status == "regressed"
        assert has_regressions(collapsed)
        just_over = compare_results(
            baseline, _one_metric_result(20.0), tolerance=3.0
        )
        assert _verdict(just_over).status == "regressed"
        within = compare_results(baseline, _one_metric_result(30.0), tolerance=3.0)
        assert _verdict(within).status == "ok"
        improved = compare_results(
            baseline, _one_metric_result(500.0), tolerance=3.0
        )
        assert _verdict(improved).status == "improved"

    def test_loose_tolerance_latency_band_unchanged(self):
        """Lower-is-better keeps the additive band (equivalent to 1+tol x)."""
        baseline = _one_metric_result(10.0, hib=False, name="p99_ms")
        worse = _one_metric_result(50.0, hib=False, name="p99_ms")
        within = _one_metric_result(35.0, hib=False, name="p99_ms")
        assert (
            _verdict(compare_results(baseline, worse, tolerance=3.0), "p99_ms").status
            == "regressed"
        )
        assert (
            _verdict(compare_results(baseline, within, tolerance=3.0), "p99_ms").status
            == "ok"
        )

    def test_per_metric_tolerance_overrides_global(self):
        """tolerance=0.5 admits down to 1000/1.5 ≈ 667, well past the 10% default."""
        baseline = _one_metric_result(1000.0, tolerance=0.5)
        current = _one_metric_result(700.0)
        assert _verdict(compare_results(baseline, current)).status == "ok"

    def test_zero_valued_exact_gate(self):
        """A zero baseline with zero spread gates exactly (e.g. leak counters)."""
        baseline = _one_metric_result(0.0, hib=False, name="leaks")
        dirty = _one_metric_result(1.0, hib=False, name="leaks")
        assert _verdict(compare_results(baseline, dirty), "leaks").status == "regressed"
        clean = _one_metric_result(0.0, hib=False, name="leaks")
        assert _verdict(compare_results(baseline, clean), "leaks").status == "ok"

    def test_missing_gated_metric_is_a_regression(self):
        baseline = _one_metric_result(1000.0)
        current = bench_result("suite", [("unrelated", 1.0)])
        comparisons = compare_results(baseline, current)
        assert _verdict(comparisons).status == "missing"
        assert _verdict(comparisons).regression
        assert has_regressions(comparisons)

    def test_informational_metrics_never_gate(self):
        baseline = bench_result("suite", [Metric("count", 100.0)])
        current = bench_result("suite", [Metric("count", 1.0)])
        comparisons = compare_results(baseline, current)
        assert _verdict(comparisons, "count").status == "skipped"
        assert not has_regressions(comparisons)

    def test_new_metric_reported_not_gated(self):
        baseline = bench_result("suite", [("a", 1.0)])
        current = bench_result(
            "suite", [("a", 1.0), Metric("b", 2.0, higher_is_better=True)]
        )
        comparisons = compare_results(baseline, current)
        assert _verdict(comparisons, "b").status == "new"
        assert not has_regressions(comparisons)

    def test_self_compare_is_clean(self):
        result = bench_result(
            "suite",
            [
                Metric("qps", 100.0, higher_is_better=True),
                Metric("p99", 3.0, higher_is_better=False),
                Metric("count", 5.0),
            ],
        )
        comparisons = compare_results(result, result)
        assert not has_regressions(comparisons)
        assert {c.status for c in comparisons} <= {"ok", "skipped"}


class TestComparePaths:
    def test_directory_compare_matches_suites(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        write_result(_one_metric_result(1000.0), base_dir)
        write_result(_one_metric_result(400.0), cur_dir)
        comparisons = compare_paths(base_dir, cur_dir)
        assert has_regressions(comparisons)

    def test_suite_missing_from_current_dir_gates(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        write_result(_one_metric_result(1000.0), base_dir)
        cur_dir.mkdir()
        comparisons = compare_paths(base_dir, cur_dir)
        assert _verdict(comparisons, "<suite>").status == "missing"
        assert has_regressions(comparisons)

    def test_suite_only_in_current_dir_is_new(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        base_dir.mkdir()
        write_result(_one_metric_result(1000.0), cur_dir)
        comparisons = compare_paths(base_dir, cur_dir)
        assert _verdict(comparisons, "<suite>").status == "new"
        assert not has_regressions(comparisons)

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compare_paths(tmp_path / "nope", tmp_path / "nope2")


class TestFormatComparisons:
    def test_summary_line_and_regression_rows(self):
        comparisons = compare_results(
            _one_metric_result(1000.0), _one_metric_result(400.0)
        )
        text = format_comparisons(comparisons)
        assert "REGRESSED" in text
        assert "1 regression(s)" in text

    def test_quiet_by_default_verbose_shows_ok_rows(self):
        result = _one_metric_result(1000.0)
        comparisons = compare_results(result, result)
        assert "qps" not in format_comparisons(comparisons)
        assert "qps" in format_comparisons(comparisons, verbose=True)

"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    DatasetError,
    EdgeError,
    ExperimentError,
    GraphError,
    IndexBuildError,
    IndexStateError,
    ReproError,
    SerializationError,
    VertexError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GraphError,
            EdgeError,
            IndexBuildError,
            IndexStateError,
            SerializationError,
            DatasetError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_vertex_error_is_index_error(self):
        assert issubclass(VertexError, IndexError)
        assert issubclass(VertexError, GraphError)

    def test_vertex_error_message_and_fields(self):
        error = VertexError(7, 5)
        assert error.vertex == 7
        assert error.num_vertices == 5
        assert "7" in str(error) and "5" in str(error)

    def test_edge_error_is_graph_error(self):
        assert issubclass(EdgeError, GraphError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise DatasetError("nope")

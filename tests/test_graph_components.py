"""Unit tests for connectivity helpers."""

from __future__ import annotations

from repro.graph.components import (
    component_sizes,
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.csr import Graph


class TestConnectedComponents:
    def test_single_component(self, path_graph):
        labels = connected_components(path_graph)
        assert set(labels) == {0}

    def test_multiple_components(self, disconnected_graph):
        labels = connected_components(disconnected_graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_component_sizes_sorted(self, disconnected_graph):
        sizes = component_sizes(disconnected_graph)
        assert sizes == [3, 2, 1]

    def test_directed_weak_connectivity(self):
        graph = Graph(4, [(0, 1), (2, 1), (3, 2)], directed=True)
        labels = connected_components(graph)
        assert len(set(labels)) == 1

    def test_empty_graph(self):
        graph = Graph(0, [])
        assert connected_components(graph).shape[0] == 0
        assert is_connected(graph)


class TestIsConnected:
    def test_connected(self, cycle_graph):
        assert is_connected(cycle_graph)

    def test_disconnected(self, disconnected_graph):
        assert not is_connected(disconnected_graph)

    def test_single_vertex(self):
        assert is_connected(Graph(1, []))


class TestLargestConnectedComponent:
    def test_extracts_biggest(self, disconnected_graph):
        sub, mapping = largest_connected_component(disconnected_graph)
        assert sub.num_vertices == 3
        assert sorted(mapping) == [0, 1, 2]
        assert is_connected(sub)

    def test_connected_graph_unchanged_size(self, small_social_graph):
        sub, mapping = largest_connected_component(small_social_graph)
        assert sub.num_vertices == small_social_graph.num_vertices
        assert sub.num_edges == small_social_graph.num_edges

    def test_mapping_preserves_adjacency(self, disconnected_graph):
        sub, mapping = largest_connected_component(disconnected_graph)
        for u, v in sub.edges():
            assert disconnected_graph.has_edge(int(mapping[u]), int(mapping[v]))

    def test_empty_graph(self):
        graph = Graph(0, [])
        sub, mapping = largest_connected_component(graph)
        assert sub.num_vertices == 0
        assert mapping.shape[0] == 0

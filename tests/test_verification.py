"""Tests for the index verification utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.core.labels import LabelSet
from repro.core.verification import (
    verify_against_bfs,
    verify_index,
    verify_label_invariants,
)
from repro.errors import IndexStateError


class TestVerifyHealthyIndexes:
    @pytest.mark.parametrize("num_bp", [0, 4])
    def test_correct_index_passes(self, medium_social_graph, num_bp):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=num_bp).build(
            medium_social_graph
        )
        report = verify_index(index, num_sources=5, num_label_vertices=50)
        assert report.ok
        assert report.num_sources_checked == 5
        assert report.num_pairs_checked == 5 * medium_social_graph.num_vertices
        assert report.num_vertices_checked == 50
        assert "OK" in report.summary()

    def test_disconnected_graph_passes(self, disconnected_graph):
        index = PrunedLandmarkLabeling().build(disconnected_graph)
        assert verify_index(index, num_sources=6, num_label_vertices=None).ok

    def test_unbuilt_index_rejected(self):
        with pytest.raises(IndexStateError):
            verify_against_bfs(PrunedLandmarkLabeling())

    def test_loaded_index_without_graph_rejected(self, tmp_path, small_social_graph):
        from repro.core.serialization import load_index, save_index

        index = PrunedLandmarkLabeling().build(small_social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        with pytest.raises(IndexStateError):
            verify_against_bfs(loaded)


class TestVerifyCorruptedIndexes:
    def corrupt_distance(self, index: PrunedLandmarkLabeling) -> None:
        """Flip one stored label distance to an incorrect value."""
        labels = index.label_set
        dists = labels.distances.copy()
        # Pick a non-trivial entry (distance > 0) and perturb it.
        target = int(np.flatnonzero(dists > 0)[0])
        dists[target] = dists[target] + 1
        index._labels = LabelSet(
            labels.indptr, labels.hub_ranks, dists, labels.order
        )

    def test_distance_mismatch_detected(self, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            small_social_graph
        )
        self.corrupt_distance(index)
        report = verify_index(index, num_sources=small_social_graph.num_vertices // 4)
        assert not report.ok
        kinds = {issue.kind for issue in report.issues}
        assert "stale-distance" in kinds or "distance-mismatch" in kinds

    def test_unsorted_label_detected(self, small_social_graph):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(
            small_social_graph
        )
        labels = index.label_set
        hubs = labels.hub_ranks.copy()
        # Find a vertex with at least two entries and swap them.
        sizes = labels.label_sizes()
        vertex = int(np.flatnonzero(sizes >= 2)[0])
        start = int(labels.indptr[vertex])
        hubs[start], hubs[start + 1] = hubs[start + 1], hubs[start]
        index._labels = LabelSet(labels.indptr, hubs, labels.distances, labels.order)
        report = verify_label_invariants(index, num_vertices=None)
        assert not report.ok
        assert any(issue.kind == "unsorted-label" for issue in report.issues)

    def test_issue_string_rendering(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        self.corrupt_distance(index)
        report = verify_label_invariants(index, num_vertices=None)
        assert not report.ok
        assert "vertex" in str(report.issues[0])

    def test_report_merge(self, small_social_graph):
        index = PrunedLandmarkLabeling().build(small_social_graph)
        a = verify_against_bfs(index, num_sources=2)
        b = verify_label_invariants(index, num_vertices=10)
        merged = a.merge(b)
        assert merged.num_sources_checked == 2
        assert merged.num_vertices_checked == 10
        assert merged.ok

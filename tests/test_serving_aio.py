"""Tests for the asyncio serving front end: protocol, admin plane, drain."""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.core.index import PrunedLandmarkLabeling
from repro.errors import AdmissionError, ServingError, VertexError
from repro.serving import (
    AsyncQueryFrontend,
    BatchQueryEngine,
    LRUCache,
    ServerMetrics,
    ShardedQueryEngine,
    SnapshotManager,
)
from tests.conftest import sample_pairs


def run(coroutine):
    """Run one test coroutine on a fresh event loop."""
    return asyncio.run(coroutine)


async def _send_lines(host, port, payload: str):
    """One protocol session: send ``payload``, return the reply lines until EOF."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload.encode("utf-8"))
    await writer.drain()
    writer.write_eof()
    lines = []
    while True:
        raw = await reader.readline()
        if not raw:
            break
        lines.append(raw.decode("utf-8").rstrip("\n"))
    writer.close()
    return lines


async def _http_request(host, port, method: str, path: str, body: bytes = b""):
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    header, _, payload = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), payload.decode("utf-8")


@pytest.fixture
def engine(small_social_graph):
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=2).build(small_social_graph)
    return BatchQueryEngine(index)


class TestFrontendQueries:
    def test_wire_replies_match_index(self, engine, small_social_graph):
        pairs = sample_pairs(small_social_graph, 40, seed=5)

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            payload = "".join(f"{s} {t}\n" for s, t in pairs) + "QUIT\n"
            lines = await _send_lines(host, port, payload)
            await frontend.stop()
            return lines

        lines = run(scenario())
        assert len(lines) == len(pairs)
        for (s, t), line in zip(pairs, lines):
            expected = engine.index.distance(s, t)
            rendered = "inf" if expected == float("inf") else f"{expected:g}"
            assert line == f"{s}\t{t}\t{rendered}"

    def test_comma_form_and_blank_and_parse_error(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            lines = await _send_lines(host, port, "0,5\n\nnot a pair\n9 9\nQUIT\n")
            await frontend.stop()
            return lines

        lines = run(scenario())
        assert lines[0].startswith("0\t5\t")
        assert lines[1].startswith("error: cannot parse query")
        assert lines[2] == "9\t9\t0"

    def test_engine_timeout_answers_error_line(self, engine, monkeypatch):
        """A wedged backend (shard timeout) answers an error line, exactly
        like the threaded server — it must not kill the session."""

        def wedged(*_args, **_kwargs):
            raise TimeoutError("worker shard did not complete in time")

        monkeypatch.setattr(engine, "query_batch", wedged)

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            reply = await frontend._handle_line("0 5")
            await frontend.stop()
            return reply

        reply = run(scenario())
        assert reply.startswith("error: worker shard")

    def test_out_of_range_vertex_answers_error_line(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            lines = await _send_lines(host, port, "0 100000\n-1 0\nQUIT\n")
            await frontend.stop()
            return lines

        lines = run(scenario())
        assert all(line.startswith("error:") for line in lines)

    def test_concurrent_submissions_coalesce(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine, batch_timeout=0.05)
            await frontend.start()
            futures = [frontend.submit([i], [7 - i]) for i in range(6)]
            results = await asyncio.gather(*futures)
            await frontend.stop()
            return results, frontend.metrics_snapshot()

        results, stats = run(scenario())
        for i, result in enumerate(results):
            assert result[0] == engine.index.distance(i, 7 - i)
        assert stats["num_queries"] == 6
        # Six submits with no awaits in between land in fewer batches.
        assert stats["num_batches"] < stats["num_requests"]

    def test_submit_requires_start(self, engine):
        frontend = AsyncQueryFrontend(engine)
        with pytest.raises(ServingError):
            frontend.submit([0], [1])

    def test_vertex_validated_at_submission(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            try:
                with pytest.raises(VertexError):
                    frontend.submit([0], [10**6])
            finally:
                await frontend.stop()

        run(scenario())

    def test_admission_control_rejects_burst(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine, max_pending=2)
            await frontend.start()
            # No suspension points between submits: the batcher cannot drain,
            # so the third submission must bounce.
            first = frontend.submit([0], [1])
            second = frontend.submit([1], [2])
            with pytest.raises(AdmissionError):
                frontend.submit([2], [3])
            await asyncio.gather(first, second)
            await frontend.stop()
            return frontend.metrics_snapshot()

        stats = run(scenario())
        assert stats["num_rejected"] == 1

    def test_cache_hits_and_invalidation_on_publish(self, small_social_graph):
        async def scenario():
            manager = SnapshotManager.from_graph(small_social_graph)
            cache = LRUCache(256)
            frontend = AsyncQueryFrontend(manager, cache=cache)
            await frontend.start()
            before = await frontend.distance(0, 5)
            again = await frontend.distance(0, 5)
            hits_after_repeat = cache.stats.hits
            reply = await frontend.apply_mutation("add", (0, 199))
            assert "pending publish" in reply
            await frontend.publish()
            refreshed = await frontend.distance(0, 199)
            await frontend.stop()
            return before, again, hits_after_repeat, refreshed, len(cache)

        before, again, hits, refreshed, cached = run(scenario())
        assert before == again
        assert hits >= 1
        assert refreshed == 1.0
        # The publish cleared the warm entries; only post-publish pairs remain.
        assert cached == 1


class TestStatsCommands:
    def test_stats_and_stats_json_lines(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine, cache=LRUCache(16))
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            lines = await _send_lines(host, port, "0 5\nSTATS\nstats json\nQUIT\n")
            await frontend.stop()
            return lines

        lines = run(scenario())
        assert lines[0].startswith("0\t5\t")
        for payload in (lines[1], lines[2]):
            parsed = json.loads(payload)
            assert parsed["num_queries"] == 1
            assert "cache_hit_rate" in parsed
            assert "num_connections" in parsed


class TestHttpAdminPlane:
    def test_metrics_healthz_publish_and_errors(self, small_social_graph):
        async def scenario():
            manager = SnapshotManager.from_graph(small_social_graph)
            frontend = AsyncQueryFrontend(manager)
            await frontend.start()
            await frontend.start_tcp()
            await frontend.start_http()
            host, port = frontend.tcp_address
            http_host, http_port = frontend.http_address
            await _send_lines(host, port, "0 5\nadd 0 199\nQUIT\n")

            metrics = await _http_request(http_host, http_port, "GET", "/metrics")
            health = await _http_request(http_host, http_port, "GET", "/healthz")
            published = await _http_request(http_host, http_port, "POST", "/publish")
            missing = await _http_request(http_host, http_port, "GET", "/nope")
            wrong_verb = await _http_request(http_host, http_port, "POST", "/metrics")
            version = manager.version
            await frontend.stop()
            return metrics, health, published, missing, wrong_verb, version

        metrics, health, published, missing, wrong_verb, version = run(scenario())

        status, body = metrics
        assert status == 200
        assert body.endswith("\n")
        samples = {}
        for line in body.splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            name, _, value = line.partition(" ")
            samples[name] = value
        assert float(samples["repro_pll_num_queries"]) == 1.0
        assert "repro_pll_latency_p99_ms" in samples
        assert "# TYPE repro_pll_num_queries counter" in body

        status, body = health
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["snapshot_version"] == 1

        status, body = published
        assert status == 200
        assert json.loads(body) == {"published": True, "version": 2}
        assert version == 2

        assert missing[0] == 404
        assert wrong_verb[0] == 405

    def test_over_limit_header_line_answers_400(self, engine):
        """A header line over the 64 KiB stream limit must get a 400, not an
        unhandled task exception and a silent close."""

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            reader, writer = await asyncio.open_connection(http_host, http_port)
            writer.write(
                b"GET /healthz HTTP/1.1\r\nX-Huge: " + b"a" * 70_000 + b"\r\n\r\n"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout=10)
            writer.close()
            await frontend.stop()
            return raw

        raw = run(scenario())
        assert raw.startswith(b"HTTP/1.1 400")

    def test_publish_without_writable_backend_conflicts(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            result = await _http_request(http_host, http_port, "POST", "/publish")
            await frontend.stop()
            return result

        status, body = run(scenario())
        assert status == 409
        assert "error" in json.loads(body)


def _segment_names(prefix: str):
    shm = Path("/dev/shm")
    if not shm.exists():
        return None
    return sorted(p.name for p in shm.iterdir() if p.name.startswith(prefix))


class TestGracefulShutdownUnderLoad:
    def test_every_client_gets_reply_or_clean_error_and_no_leaks(
        self, small_social_graph
    ):
        """Drain with in-flight queries: every client sees a response or a
        clean ``error:`` line (never a hang or a torn reply), and no
        shared-memory generation outlives the stack."""
        num_clients = 24
        queries_per_client = 30

        manager = SnapshotManager.from_graph(small_social_graph, shared=True)
        generation_name = manager.current.generation.name
        engine = ShardedQueryEngine(
            manager, num_workers=2, min_shard_size=4, local_threshold=0
        )
        outcomes = []

        async def client(host, port, index):
            reader, writer = await asyncio.open_connection(host, port)
            replies, errors = 0, 0
            torn = False
            try:
                for number in range(queries_per_client):
                    s = (index + number) % small_social_graph.num_vertices
                    t = (index * 7 + number) % small_social_graph.num_vertices
                    writer.write(f"{s} {t}\n".encode())
                    await writer.drain()
                    raw = await reader.readline()
                    if not raw:
                        break  # clean EOF from the drain
                    line = raw.decode().rstrip("\n")
                    if not line.endswith("\n") and not raw.endswith(b"\n"):
                        torn = True
                        break
                    if line.startswith("error:"):
                        errors += 1
                    else:
                        replies += 1
            except ConnectionError:
                pass
            finally:
                writer.close()
            outcomes.append((replies, errors, torn))

        async def scenario():
            frontend = AsyncQueryFrontend(
                engine, batch_timeout=0.005, metrics=ServerMetrics()
            )
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            tasks = [
                asyncio.create_task(client(host, port, index))
                for index in range(num_clients)
            ]
            # Let the load build, then drain while queries are in flight.
            await asyncio.sleep(0.1)
            assert frontend.num_connections == num_clients
            await frontend.stop()
            await asyncio.wait_for(asyncio.gather(*tasks), timeout=30)
            return frontend.metrics_snapshot()

        try:
            stats = asyncio.run(scenario())
        finally:
            engine.close()
            manager.close()

        assert len(outcomes) == num_clients
        assert all(not torn for _replies, _errors, torn in outcomes)
        # The drain happened mid-stream: real work was answered, and nobody
        # was left hanging (gather returned within the timeout).
        assert sum(replies for replies, _errors, _torn in outcomes) > 0
        assert stats["num_queries"] > 0
        segments = _segment_names(generation_name.split("-g")[0])
        if segments is not None:
            assert segments == [], "shared-memory generations leaked past close"

    def test_drain_completes_with_idle_admin_connection(self, engine):
        """An admin connection that never sends a request must not hold the
        drain hostage (Python >= 3.12.1 waits for handlers in wait_closed)."""

        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            reader, writer = await asyncio.open_connection(http_host, http_port)
            try:
                await asyncio.wait_for(frontend.stop(), timeout=15)
                # The idle connection was force-closed by the drain.
                assert (await reader.read()) == b""
            finally:
                writer.close()

        run(scenario())

    def test_stop_is_idempotent_and_rejects_new_submissions(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            result = await frontend.distance(0, 5)
            await frontend.stop()
            await frontend.stop()  # idempotent
            with pytest.raises(ServingError):
                frontend.submit([0], [1])
            return result

        assert run(scenario()) == engine.index.distance(0, 5)


class TestServeOrchestration:
    def test_serve_runs_until_requested_stop(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            ready = asyncio.Event()
            observed = {}

            def on_ready(front):
                observed["tcp"] = front.tcp_address
                observed["http"] = front.http_address
                ready.set()

            serve_task = asyncio.create_task(
                frontend.serve(
                    "127.0.0.1",
                    0,
                    http_port=0,
                    install_signal_handlers=False,
                    ready=on_ready,
                )
            )
            await asyncio.wait_for(ready.wait(), timeout=10)
            host, port = observed["tcp"]
            lines = await _send_lines(host, port, "0 5\nQUIT\n")
            frontend.request_stop()
            await asyncio.wait_for(serve_task, timeout=30)
            return lines, observed

        lines, observed = run(scenario())
        assert lines[0].startswith("0\t5\t")
        assert observed["http"] is not None


class TestTracesAndDebugSurface:
    def test_traces_endpoint_returns_recorded_traces(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_tcp()
            await frontend.start_http()
            host, port = frontend.tcp_address
            http_host, http_port = frontend.http_address
            await _send_lines(host, port, "0 5\n1 7\nQUIT\n")
            all_traces = await _http_request(http_host, http_port, "GET", "/traces")
            limited = await _http_request(
                http_host, http_port, "GET", "/traces?limit=1"
            )
            wire = await _send_lines(host, port, "TRACES\nQUIT\n")
            await frontend.stop()
            return all_traces, limited, wire

        (status, body), (lim_status, lim_body), wire = run(scenario())
        assert status == 200
        payload = json.loads(body)
        assert payload["num_recorded"] == 2
        assert len(payload["recent"]) == 2
        names = [s["name"] for s in payload["recent"][0]["spans"]]
        for expected in ("queue", "batch", "kernel", "reply"):
            assert expected in names
        assert lim_status == 200
        assert len(json.loads(lim_body)["recent"]) == 1
        # The wire TRACES command serves the same payload shape.
        assert json.loads(wire[0])["num_recorded"] == 2

    def test_sharded_query_trace_stitches_worker_spans(self, small_social_graph):
        """The acceptance path: a query answered by the multi-process engine
        leaves one trace showing queue, batch and per-worker shard spans."""
        manager = SnapshotManager.from_graph(small_social_graph, shared=True)
        engine = ShardedQueryEngine(
            manager, num_workers=2, min_shard_size=4, local_threshold=0
        )

        async def scenario():
            frontend = AsyncQueryFrontend(engine, batch_timeout=0.005)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            # One 16-pair request: big enough that the sharded engine fans it
            # out across both workers instead of answering inline.
            pairs = sample_pairs(small_social_graph, 16, seed=11)
            await frontend.submit([s for s, _ in pairs], [t for _, t in pairs])
            traces = await _http_request(http_host, http_port, "GET", "/traces")
            await frontend.stop()
            return traces

        try:
            status, body = run(scenario())
        finally:
            engine.close()
            manager.close()

        assert status == 200
        payload = json.loads(body)
        assert payload["num_recorded"] >= 1
        # At least one trace fanned out across the pool: its shard spans name
        # the worker pids that served it, stitched under the parent trace id.
        stitched = [
            trace
            for trace in payload["recent"]
            if [s for s in trace["spans"] if s["name"] == "shard"]
        ]
        assert stitched, "no trace carried worker shard spans"
        trace = stitched[0]
        span_names = [s["name"] for s in trace["spans"]]
        assert "queue" in span_names and "batch" in span_names
        shard_spans = [s for s in trace["spans"] if s["name"] == "shard"]
        workers = {span["worker"] for span in shard_spans}
        assert len(workers) >= 2  # both pool workers contributed
        for span in shard_spans:
            assert span["pairs"] >= 1 and span["ms"] >= 0.0

    def test_debug_threads_dumps_all_stacks(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            result = await _http_request(
                http_host, http_port, "GET", "/debug/threads"
            )
            await frontend.stop()
            return result

        status, body = run(scenario())
        assert status == 200
        assert "--- thread" in body
        assert "MainThread" in body
        # The dump shows real stack frames, not just thread names.
        assert "File \"" in body

    def test_debug_profile_returns_pstats_report(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            ok = await _http_request(
                http_host, http_port, "GET", "/debug/profile?seconds=0.05"
            )
            bad = await _http_request(
                http_host, http_port, "GET", "/debug/profile?seconds=bogus"
            )
            negative = await _http_request(
                http_host, http_port, "GET", "/debug/profile?seconds=-1"
            )
            await frontend.stop()
            return ok, bad, negative

        ok, bad, negative = run(scenario())
        assert ok[0] == 200
        assert "cumulative" in ok[1]  # the pstats sort header
        assert bad[0] == 400
        assert negative[0] == 400

    def test_debug_profile_concurrent_runs_conflict(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_http()
            http_host, http_port = frontend.http_address
            first = asyncio.create_task(
                _http_request(
                    http_host, http_port, "GET", "/debug/profile?seconds=0.3"
                )
            )
            await asyncio.sleep(0.1)  # first profile is mid-flight
            second = await _http_request(
                http_host, http_port, "GET", "/debug/profile?seconds=0.05"
            )
            first_result = await first
            await frontend.stop()
            return first_result, second

        first, second = run(scenario())
        assert first[0] == 200
        assert second[0] == 409

    def test_metrics_exposes_index_health_and_histograms(self, small_social_graph):
        async def scenario():
            manager = SnapshotManager.from_graph(small_social_graph, shared=True)
            frontend = AsyncQueryFrontend(manager)
            await frontend.start()
            await frontend.start_tcp()
            await frontend.start_http()
            host, port = frontend.tcp_address
            http_host, http_port = frontend.http_address
            await _send_lines(host, port, "0 5\nadd 0 199\nQUIT\n")
            status, body = await _http_request(http_host, http_port, "GET", "/metrics")
            await frontend.stop()
            manager.close()
            return status, body

        status, body = run(scenario())
        assert status == 200
        assert "repro_pll_index_label_entries " in body
        assert "repro_pll_index_bit_parallel_roots " in body
        # One pending shadow mutation since the last publish.
        assert "repro_pll_index_dirty_vertices 1" in body
        assert "repro_pll_generation_bytes " in body
        assert 'repro_pll_generation_info{name="' in body
        # True histogram series for end-to-end latency and every stage.
        assert "# TYPE repro_pll_latency_seconds histogram" in body
        assert 'repro_pll_latency_seconds_bucket{le="+Inf"} 1' in body
        for stage in ("queue", "batch", "kernel", "cache_probe"):
            assert f"# TYPE repro_pll_stage_{stage}_seconds histogram" in body


class TestOneToManyWire:
    def test_one_to_many_wire_session(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            await frontend.start_tcp()
            host, port = frontend.tcp_address
            lines = await _send_lines(
                host, port, "many 0 1 2\none-to-many,0,3\nmany 0\nQUIT\n"
            )
            snapshot = frontend.metrics_snapshot()
            await frontend.stop()
            return lines, snapshot

        lines, snapshot = run(scenario())
        index = engine.index
        for line, t in zip(lines[:3], (1, 2, 3)):
            expected = index.distance(0, t)
            rendered = "inf" if expected == float("inf") else f"{expected:g}"
            assert line == f"0\t{t}\t{rendered}"
        assert lines[3].startswith("error: cannot parse query")
        assert snapshot["verbs"]["one_to_many"] == 3

    def test_query_one_to_many_coroutine_matches_batch(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            try:
                return await frontend.query_one_to_many(0, [1, 2, 3])
            finally:
                await frontend.stop()

        distances = run(scenario())
        expected = engine.index.distance_batch([0, 0, 0], [1, 2, 3])
        assert list(distances) == list(expected)

    def test_one_to_many_admission_control(self, engine):
        """Fan-outs share the max_pending budget instead of bypassing it."""

        async def scenario():
            frontend = AsyncQueryFrontend(engine, max_pending=2)
            await frontend.start()
            # No suspension points between submits: the batcher cannot drain,
            # so the fan-out arriving third must bounce like a pair would.
            first = frontend.submit([0], [1])
            second = frontend.submit([1], [2])
            with pytest.raises(AdmissionError):
                await frontend.query_one_to_many(0, [1, 2, 3])
            await asyncio.gather(first, second)
            # Budget released again: the same fan-out is admitted now.
            distances = await frontend.query_one_to_many(0, [1, 2, 3])
            snapshot = frontend.metrics_snapshot()
            await frontend.stop()
            return distances, snapshot

        distances, snapshot = run(scenario())
        assert distances.shape == (3,)
        assert snapshot["num_rejected"] == 1

    def test_event_loop_lag_gauge_present(self, engine):
        async def scenario():
            frontend = AsyncQueryFrontend(engine)
            await frontend.start()
            # Let the lag sampler complete at least zero-or-one cycles; the
            # gauge must exist (and be finite) even before the first sample.
            snapshot = frontend.metrics_snapshot()
            await frontend.stop()
            return snapshot

        snapshot = run(scenario())
        assert "event_loop_lag_seconds" in snapshot
        assert snapshot["event_loop_lag_seconds"] >= 0.0

"""Unit tests for the synthetic network generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.generators import (
    assign_random_weights,
    barabasi_albert_graph,
    configuration_model_graph,
    dense_hub_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    gnm_random_graph,
    grid_graph,
    holme_kim_graph,
    orient_edges,
    power_law_degree_sequence,
    random_geometric_graph,
    rewire_edges,
    ring_lattice,
    rmat_graph,
    split_edge_stream,
    watts_strogatz_graph,
)
from repro.graph.components import is_connected
from repro.graph.traversal import bfs_distances


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        graph = barabasi_albert_graph(300, 3, seed=0)
        assert graph.num_vertices == 300
        assert is_connected(graph)
        # Each arriving vertex adds m edges (minus the seed star adjustment).
        assert graph.num_edges >= 3 * (300 - 4)

    def test_hub_emerges(self):
        graph = barabasi_albert_graph(500, 2, seed=1)
        degrees = graph.degrees()
        assert degrees.max() > 10 * degrees.mean() / 2

    def test_determinism(self):
        a = barabasi_albert_graph(100, 2, seed=5)
        b = barabasi_albert_graph(100, 2, seed=5)
        assert a.structurally_equal(b)

    def test_invalid_m(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 10)


class TestHolmeKim:
    def test_size(self):
        graph = holme_kim_graph(200, 3, triad_probability=0.5, seed=0)
        assert graph.num_vertices == 200
        assert graph.num_edges > 0

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            holme_kim_graph(50, 2, triad_probability=1.5)

    def test_triangles_present(self):
        graph = holme_kim_graph(300, 3, triad_probability=0.8, seed=2)
        # Count triangles incident to the highest-degree vertex.
        hub = int(np.argmax(graph.degrees()))
        neighbors = set(int(v) for v in graph.neighbors(hub))
        triangle_found = any(
            any(int(w) in neighbors for w in graph.neighbors(v)) for v in neighbors
        )
        assert triangle_found


class TestDenseHub:
    def test_hubs_are_densified(self):
        base = barabasi_albert_graph(300, 2, seed=3)
        dense = dense_hub_graph(300, 2, num_hubs=3, hub_extra_fraction=0.2, seed=3)
        assert dense.num_edges > base.num_edges
        assert dense.degrees()[:3].min() >= 0.15 * 300

    def test_invalid_fraction(self):
        with pytest.raises(GraphError):
            dense_hub_graph(50, 2, hub_extra_fraction=2.0)


class TestErdosRenyi:
    def test_edge_count_close_to_expectation(self):
        n, p = 200, 0.05
        graph = erdos_renyi_graph(n, p, seed=0)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 0.3 * expected

    def test_zero_probability(self):
        graph = erdos_renyi_graph(50, 0.0, seed=0)
        assert graph.num_edges == 0

    def test_full_probability(self):
        graph = erdos_renyi_graph(10, 1.0, seed=0)
        assert graph.num_edges == 45

    def test_directed_variant(self):
        graph = erdos_renyi_graph(30, 0.1, seed=1, directed=True)
        assert graph.directed

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        graph = gnm_random_graph(50, 120, seed=0)
        assert graph.num_edges == 120

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            gnm_random_graph(5, 100)


class TestConfigurationModel:
    def test_power_law_sequence_properties(self):
        sequence = power_law_degree_sequence(500, exponent=2.5, seed=0)
        assert sequence.shape[0] == 500
        assert sequence.min() >= 1
        assert sequence.sum() % 2 == 0

    def test_graph_respects_sequence_upper_bound(self):
        sequence = power_law_degree_sequence(300, exponent=2.2, seed=1)
        graph = configuration_model_graph(sequence, seed=1)
        assert graph.num_vertices == 300
        assert np.all(graph.degrees() <= sequence)

    def test_odd_sum_rejected(self):
        with pytest.raises(GraphError):
            configuration_model_graph([1, 1, 1])

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_law_degree_sequence(10, exponent=0.5)


class TestRMAT:
    def test_size(self):
        graph = rmat_graph(8, 4.0, seed=0)
        assert graph.num_vertices == 256
        assert graph.num_edges > 0

    def test_skewed_degrees(self):
        graph = rmat_graph(10, 8.0, seed=1)
        degrees = graph.degrees()
        assert degrees.max() > 5 * max(degrees.mean(), 1)

    def test_invalid_quadrants(self):
        with pytest.raises(GraphError):
            rmat_graph(5, 2.0, quadrants=(0.5, 0.5, 0.5, 0.5))

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            rmat_graph(0, 2.0)


class TestSmallWorld:
    def test_ring_lattice_degrees(self):
        graph = ring_lattice(20, 4)
        assert np.all(graph.degrees() == 4)

    def test_ring_lattice_invalid(self):
        with pytest.raises(GraphError):
            ring_lattice(10, 3)

    def test_watts_strogatz_no_rewiring_is_lattice(self):
        ws = watts_strogatz_graph(30, 4, 0.0, seed=0)
        lattice = ring_lattice(30, 4)
        assert ws.structurally_equal(lattice)

    def test_watts_strogatz_rewiring_shrinks_diameter(self):
        lattice = watts_strogatz_graph(120, 4, 0.0, seed=0)
        rewired = watts_strogatz_graph(120, 4, 0.3, seed=0)
        lattice_far = bfs_distances(lattice, 0).max()
        rewired_far = bfs_distances(rewired, 0)
        assert rewired_far[rewired_far >= 0].max() < lattice_far

    def test_watts_strogatz_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 4, 2.0)


class TestForestFire:
    def test_size_and_connectivity(self):
        graph = forest_fire_graph(200, 0.3, seed=0)
        assert graph.num_vertices == 200
        assert is_connected(graph)

    def test_density_grows_with_probability(self):
        sparse = forest_fire_graph(200, 0.1, seed=1)
        dense = forest_fire_graph(200, 0.45, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            forest_fire_graph(50, 1.0)


class TestRoadLike:
    def test_grid_structure(self):
        graph = grid_graph(4, 5)
        assert graph.num_vertices == 20
        assert graph.num_edges == 4 * 4 + 5 * 3
        assert is_connected(graph)

    def test_grid_weighted(self):
        graph = grid_graph(4, 4, weighted=True, seed=0)
        assert graph.weighted
        assert graph.edge_weight(0, 1) > 0

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_geometric_graph(self):
        graph = random_geometric_graph(150, 0.18, seed=0)
        assert graph.num_vertices == 150
        assert graph.weighted
        # Every edge weight is below the connection radius.
        for u, v in list(graph.edges())[:50]:
            assert graph.edge_weight(u, v) < 0.18

    def test_geometric_invalid(self):
        with pytest.raises(GraphError):
            random_geometric_graph(10, 0.0)


class TestPerturbations:
    def test_assign_random_weights(self, small_social_graph):
        weighted = assign_random_weights(small_social_graph, low=1, high=5, seed=0)
        assert weighted.weighted
        assert weighted.num_edges == small_social_graph.num_edges
        weights = [weighted.edge_weight(u, v) for u, v in list(weighted.edges())[:30]]
        assert all(1 <= w <= 5 for w in weights)

    def test_assign_integer_weights(self, small_social_graph):
        weighted = assign_random_weights(
            small_social_graph, low=1, high=9, integer=True, seed=1
        )
        weights = [weighted.edge_weight(u, v) for u, v in list(weighted.edges())[:30]]
        assert all(float(w).is_integer() for w in weights)

    def test_orient_edges(self, small_social_graph):
        directed = orient_edges(small_social_graph, seed=2)
        assert directed.directed
        assert directed.num_edges >= small_social_graph.num_edges

    def test_orient_requires_undirected(self):
        from repro.graph.csr import Graph

        directed = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(GraphError):
            orient_edges(directed)

    def test_rewire_preserves_edge_count_roughly(self, small_social_graph):
        rewired = rewire_edges(small_social_graph, 0.3, seed=3)
        assert rewired.num_vertices == small_social_graph.num_vertices
        assert rewired.num_edges <= small_social_graph.num_edges

    def test_rewire_zero_fraction_is_identity(self, small_social_graph):
        assert rewire_edges(small_social_graph, 0.0) is small_social_graph

    def test_split_edge_stream_partition(self, small_social_graph):
        initial, stream = split_edge_stream(small_social_graph, 0.6, seed=4)
        assert initial.num_vertices == small_social_graph.num_vertices
        assert initial.num_edges + len(stream) == small_social_graph.num_edges

    def test_split_invalid_fraction(self, small_social_graph):
        with pytest.raises(GraphError):
            split_edge_stream(small_social_graph, 0.0)

"""Tests for the array storage backends (heap, shared memory, mmap)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.storage import (
    HeapBackend,
    MmapBackend,
    SharedGeneration,
    SharedMemoryBackend,
    new_shared_prefix,
    read_raw_meta,
    write_raw,
)
from repro.errors import SerializationError, ServingError


def _sample_fields():
    return {
        "small": np.arange(7, dtype=np.int32),
        "wide": np.arange(12, dtype=np.uint64).reshape(3, 4),
        "dists": np.array([0, 1, 65535], dtype=np.uint16),
        "empty": np.empty(0, dtype=np.int64),
    }


def _segment_names(prefix: str):
    shm = Path("/dev/shm")
    if not shm.exists():
        pytest.skip("no /dev/shm on this platform")
    return sorted(p.name for p in shm.iterdir() if p.name.startswith(prefix))


class TestHeapBackend:
    def test_alloc_and_lookup(self):
        backend = HeapBackend()
        array = backend.empty("a", (5,), np.int64)
        array[:] = 3
        assert backend.get("a") is array
        put = backend.put("b", np.arange(4))
        assert np.array_equal(backend.get("b"), put)
        assert set(backend.fields()) == {"a", "b"}
        assert backend.writable


class TestSharedMemoryBackend:
    def test_roundtrip_across_attach(self):
        backend = SharedMemoryBackend.create()
        fields = _sample_fields()
        for name, array in fields.items():
            backend.put(name, array)
        backend.seal({"purpose": "test", "count": 3})

        attached = SharedMemoryBackend.attach(backend.prefix)
        try:
            assert attached.meta == {"purpose": "test", "count": 3}
            assert set(attached.fields()) == set(fields)
            for name, array in fields.items():
                view = attached.get(name)
                assert np.array_equal(view, array)
                assert view.dtype == array.dtype
                assert not view.flags.writeable
        finally:
            attached.close()
            backend.unlink()

    def test_attach_unsealed_group_fails(self):
        backend = SharedMemoryBackend.create()
        backend.put("x", np.arange(3))
        try:
            with pytest.raises(ServingError):
                SharedMemoryBackend.attach(backend.prefix)
        finally:
            backend.unlink()

    def test_sealed_group_rejects_allocation(self):
        backend = SharedMemoryBackend.create()
        backend.put("x", np.arange(3))
        backend.seal({})
        try:
            assert not backend.writable
            with pytest.raises(ServingError):
                backend.empty("y", (2,), np.int64)
        finally:
            backend.unlink()

    def test_unlink_removes_segments(self):
        backend = SharedMemoryBackend.create()
        backend.put("x", np.arange(3))
        backend.seal({})
        assert _segment_names(backend.prefix)
        backend.unlink()
        assert _segment_names(backend.prefix) == []

    def test_prefixes_are_unique(self):
        assert new_shared_prefix() != new_shared_prefix()


class TestSharedGeneration:
    def _generation(self):
        backend = SharedMemoryBackend.create()
        backend.put("x", np.arange(3))
        backend.seal({})
        return SharedGeneration(backend)

    def test_retire_without_readers_unlinks_immediately(self):
        generation = self._generation()
        assert _segment_names(generation.name)
        generation.retire()
        assert generation.unlinked
        assert _segment_names(generation.name) == []

    def test_retire_defers_to_last_reader(self):
        generation = self._generation()
        assert generation.acquire()
        generation.retire()
        # Still readable: the name must survive until the reader detaches.
        assert not generation.unlinked
        assert _segment_names(generation.name)
        generation.release()
        assert generation.unlinked
        assert _segment_names(generation.name) == []

    def test_acquire_after_unlink_fails(self):
        generation = self._generation()
        generation.retire()
        assert not generation.acquire()


class TestRawLayout:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "group.raw"
        fields = _sample_fields()
        write_raw(path, fields, {"kind": "test"})
        backend = MmapBackend(path)
        assert backend.meta == {"kind": "test"}
        assert set(backend.fields()) == set(fields)
        for name, array in fields.items():
            view = backend.get(name)
            assert np.array_equal(view, array)
            assert view.dtype == array.dtype
            assert not view.flags.writeable

    def test_read_raw_meta(self, tmp_path):
        path = tmp_path / "group.raw"
        write_raw(path, {"a": np.arange(5)}, {"n": 5})
        assert read_raw_meta(path) == {"n": 5}

    def test_mmap_backend_is_read_only(self, tmp_path):
        path = tmp_path / "group.raw"
        write_raw(path, {"a": np.arange(5)}, {})
        backend = MmapBackend(path)
        with pytest.raises(SerializationError):
            backend.put("b", np.arange(2))
        with pytest.raises(SerializationError):
            backend.empty("c", (2,), np.int64)

    def test_rejects_non_raw_file(self, tmp_path):
        path = tmp_path / "bogus.raw"
        path.write_bytes(b"definitely not raw layout")
        with pytest.raises(SerializationError):
            MmapBackend(path)

    def test_arrays_are_aligned(self, tmp_path):
        path = tmp_path / "group.raw"
        write_raw(path, _sample_fields(), {})
        backend = MmapBackend(path)
        for name in backend.fields():
            view = backend.get(name)
            if view.size:
                assert view.ctypes.data % 64 == 0, name

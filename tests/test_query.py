"""Unit tests for the low-level query kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labels import INF_DISTANCE, LabelAccumulator
from repro.core.query import RootedQueryEvaluator, intersect_query, merge_join_query


class TestMergeJoinQuery:
    def test_common_hub_minimum(self):
        result = merge_join_query([0, 2, 5], [1, 2, 3], [2, 5, 7], [4, 1, 9])
        # Common hubs: 2 (2+4=6) and 5 (3+1=4).
        assert result == 4

    def test_no_common_hub(self):
        assert merge_join_query([0, 1], [1, 1], [2, 3], [1, 1]) == float("inf")

    def test_empty_labels(self):
        assert merge_join_query([], [], [0], [1]) == float("inf")

    def test_identical_labels(self):
        assert merge_join_query([3], [0], [3], [0]) == 0

    def test_matches_intersect_query_on_random_labels(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = np.unique(rng.integers(0, 30, size=rng.integers(0, 10)))
            b = np.unique(rng.integers(0, 30, size=rng.integers(0, 10)))
            da = rng.integers(0, 10, size=a.shape[0])
            db = rng.integers(0, 10, size=b.shape[0])
            expected = merge_join_query(list(a), list(da), list(b), list(db))
            got = intersect_query(
                a.astype(np.int32),
                da.astype(np.uint16),
                b.astype(np.int32),
                db.astype(np.uint16),
            )
            assert expected == got


class TestIntersectQuery:
    def test_empty_side(self):
        empty = np.zeros(0, dtype=np.int32)
        other = np.array([1], dtype=np.int32)
        assert intersect_query(empty, empty.astype(np.uint16), other, np.array([2], dtype=np.uint16)) == float("inf")

    def test_basic(self):
        a = np.array([0, 4], dtype=np.int32)
        da = np.array([3, 1], dtype=np.uint16)
        b = np.array([4, 9], dtype=np.int32)
        db = np.array([2, 0], dtype=np.uint16)
        assert intersect_query(a, da, b, db) == 3.0


class TestRootedQueryEvaluator:
    def make_labels(self):
        labels = LabelAccumulator(4)
        # Vertex 0 is the root; its label knows hubs 0 (itself) and 1.
        labels.append(0, 0, 0)
        labels.append(0, 1, 2)
        # Vertex 2's label has hubs 0 and 1.
        labels.append(2, 0, 3)
        labels.append(2, 1, 1)
        # Vertex 3's label has hub 5, unrelated to the root.
        labels.append(3, 5, 1)
        return labels

    def test_query_upper_bound(self):
        labels = self.make_labels()
        evaluator = RootedQueryEvaluator(8)
        evaluator.attach(labels, 0)
        # Via hub 0: 0 + 3 = 3; via hub 1: 2 + 1 = 3.
        assert evaluator.query_upper_bound(labels, 2) == 3
        assert evaluator.query_upper_bound(labels, 3) >= int(INF_DISTANCE)
        evaluator.detach()

    def test_cutoff_variant(self):
        labels = self.make_labels()
        evaluator = RootedQueryEvaluator(8)
        evaluator.attach(labels, 0)
        assert evaluator.query_upper_bound_with_cutoff(labels, 2, 3)
        assert not evaluator.query_upper_bound_with_cutoff(labels, 2, 2)
        assert not evaluator.query_upper_bound_with_cutoff(labels, 3, 100)
        evaluator.detach()

    def test_detach_resets_state(self):
        labels = self.make_labels()
        evaluator = RootedQueryEvaluator(8)
        evaluator.attach(labels, 0)
        evaluator.detach()
        # After detaching, attaching a root with an empty label yields no hits.
        evaluator.attach(labels, 1)
        assert not evaluator.query_upper_bound_with_cutoff(labels, 2, 100)
        evaluator.detach()

    def test_double_attach_rejected(self):
        labels = self.make_labels()
        evaluator = RootedQueryEvaluator(8)
        evaluator.attach(labels, 0)
        with pytest.raises(RuntimeError):
            evaluator.attach(labels, 2)
        evaluator.detach()

    def test_matches_merge_join_semantics(self):
        labels = self.make_labels()
        evaluator = RootedQueryEvaluator(8)
        evaluator.attach(labels, 0)
        expected = merge_join_query(
            labels.hub_ranks(0), labels.distances(0),
            labels.hub_ranks(2), labels.distances(2),
        )
        assert evaluator.query_upper_bound(labels, 2) == expected
        evaluator.detach()

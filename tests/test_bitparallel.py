"""Unit and property tests for bit-parallel BFS labels (paper Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitparallel import (
    BP_INF,
    WORD_BITS,
    BitParallelLabels,
    bit_parallel_bfs,
    build_bit_parallel_labels,
    query_upper_bounds_for_root,
    select_bit_parallel_roots,
)
from repro.errors import IndexBuildError
from repro.graph.ordering import degree_order
from repro.graph.traversal import UNREACHABLE, bfs_distances
from tests.conftest import random_test_graphs


class TestBitParallelBFS:
    def test_distances_match_plain_bfs(self, medium_social_graph):
        graph = medium_social_graph
        root = int(np.argmax(graph.degrees()))
        sub_roots = [int(v) for v in graph.neighbors(root)[:8]]
        dist, _, _ = bit_parallel_bfs(graph, root, sub_roots)
        expected = bfs_distances(graph, root)
        expected_inf = expected == UNREACHABLE
        assert np.array_equal(dist == BP_INF, expected_inf)
        assert np.array_equal(dist[~expected_inf], expected[~expected_inf].astype(np.uint16))

    def test_mask_semantics(self, medium_social_graph):
        """S^{-1} / S^0 masks encode d(u, v) - d(r, v) exactly (paper Section 5.1)."""
        graph = medium_social_graph
        root = int(np.argmax(graph.degrees()))
        sub_roots = [int(v) for v in graph.neighbors(root)[:10]]
        dist_root, s_minus, s_zero = bit_parallel_bfs(graph, root, sub_roots)
        sub_dists = [bfs_distances(graph, v) for v in sub_roots]

        rng = np.random.default_rng(0)
        for v in rng.integers(0, graph.num_vertices, size=80):
            v = int(v)
            if dist_root[v] == BP_INF:
                continue
            for bit, sub in enumerate(sub_roots):
                diff = int(sub_dists[bit][v]) - int(dist_root[v])
                in_minus = bool(s_minus[v] & np.uint64(1 << bit))
                in_zero = bool(s_zero[v] & np.uint64(1 << bit))
                assert in_minus == (diff == -1)
                assert in_zero == (diff == 0)

    def test_rejects_non_neighbors(self, path_graph):
        with pytest.raises(IndexBuildError):
            bit_parallel_bfs(path_graph, 0, [3])

    def test_rejects_duplicates(self, star_graph):
        with pytest.raises(IndexBuildError):
            bit_parallel_bfs(star_graph, 0, [1, 1])

    def test_rejects_too_many_sub_roots(self, star_graph):
        too_many = list(range(1, WORD_BITS + 2))
        with pytest.raises(IndexBuildError):
            bit_parallel_bfs(star_graph, 0, too_many)

    def test_empty_sub_roots_is_plain_bfs(self, cycle_graph):
        dist, s_minus, s_zero = bit_parallel_bfs(cycle_graph, 0, [])
        assert np.array_equal(dist, bfs_distances(cycle_graph, 0).astype(np.uint16))
        assert not s_minus.any()
        assert not s_zero.any()


class TestRootSelection:
    def test_greedy_selection_respects_order(self, medium_social_graph):
        order = degree_order(medium_social_graph)
        selections = select_bit_parallel_roots(medium_social_graph, order, 4)
        assert len(selections) == 4
        # The first root is the highest-degree vertex.
        assert selections[0][0] == order[0]
        # Roots and set members never repeat.
        used = []
        for root, members in selections:
            used.append(root)
            used.extend(members)
        assert len(used) == len(set(used))

    def test_runs_out_of_vertices(self, path_graph):
        order = degree_order(path_graph)
        selections = select_bit_parallel_roots(path_graph, order, 100)
        assert len(selections) < 100

    def test_max_bits_cap(self, star_graph):
        order = degree_order(star_graph)
        selections = select_bit_parallel_roots(star_graph, order, 1, max_bits=2)
        assert len(selections[0][1]) == 2

    def test_max_bits_over_word_rejected(self, star_graph):
        order = degree_order(star_graph)
        with pytest.raises(IndexBuildError):
            select_bit_parallel_roots(star_graph, order, 1, max_bits=WORD_BITS + 1)


class TestBitParallelQuery:
    def build(self, graph, num_roots=4):
        order = degree_order(graph)
        return build_bit_parallel_labels(graph, order, num_roots)

    def test_query_is_exact_through_covered_hubs(self):
        """BP query equals the true distance whenever a shortest path passes
        through one of the covered hubs, and is never an underestimate."""
        for graph in random_test_graphs(3, seed=5):
            bp = self.build(graph, num_roots=3)
            covered = set(int(v) for v in bp.covered_vertices())
            rng = np.random.default_rng(1)
            for s in rng.integers(0, graph.num_vertices, size=15):
                s = int(s)
                true = bfs_distances(graph, s)
                for t in rng.integers(0, graph.num_vertices, size=10):
                    t = int(t)
                    expected = (
                        float("inf") if true[t] == UNREACHABLE else float(true[t])
                    )
                    got = bp.query(s, t)
                    assert got >= expected or np.isclose(got, expected)
                    # Exactness through covered hubs.
                    hub_best = float("inf")
                    dist_t = None
                    for hub in covered:
                        d_sh = true[hub]
                        if d_sh == UNREACHABLE:
                            continue
                        if dist_t is None:
                            dist_t = bfs_distances(graph, t)
                        d_ht = dist_t[hub]
                        if d_ht == UNREACHABLE:
                            continue
                        hub_best = min(hub_best, float(d_sh) + float(d_ht))
                    if np.isfinite(hub_best):
                        assert got == hub_best

    def test_empty_labels_query_inf(self):
        empty = BitParallelLabels.make_empty(5)
        assert empty.empty()
        assert empty.query(0, 1) == float("inf")

    def test_covered_vertices(self, medium_social_graph):
        bp = self.build(medium_social_graph, num_roots=2)
        covered = bp.covered_vertices()
        assert bp.roots[0] in covered
        assert covered.shape[0] >= bp.num_roots

    def test_nbytes(self, medium_social_graph):
        bp = self.build(medium_social_graph, num_roots=2)
        assert bp.nbytes() > 0

    def test_frontier_bounds_match_scalar_query(self, medium_social_graph):
        bp = self.build(medium_social_graph, num_roots=4)
        rng = np.random.default_rng(2)
        root = int(rng.integers(0, medium_social_graph.num_vertices))
        vertices = rng.integers(0, medium_social_graph.num_vertices, size=30)
        bounds = query_upper_bounds_for_root(bp, root, vertices)
        for bound, vertex in zip(bounds, vertices):
            expected = bp.query(root, int(vertex))
            if np.isinf(expected):
                assert bound >= BP_INF
            else:
                assert float(bound) == expected

    def test_build_zero_roots(self, medium_social_graph):
        bp = build_bit_parallel_labels(
            medium_social_graph, degree_order(medium_social_graph), 0
        )
        assert bp.empty()

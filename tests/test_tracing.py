"""Tests for request tracing: spans, trace rings, slow log, JSON logger."""

from __future__ import annotations

import io
import json

import pytest

from repro.serving import (
    NullTraceRecorder,
    Span,
    StructuredLogger,
    Trace,
    TraceRecorder,
    make_trace_id,
)


class TestTraceIds:
    def test_ids_are_unique_and_hex(self):
        ids = {make_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # parses as hex


class TestSpan:
    def test_as_dict_merges_attrs(self):
        span = Span("kernel", 0.002, pairs=64, worker=1234)
        record = span.as_dict()
        assert record["name"] == "kernel"
        assert record["ms"] == pytest.approx(2.0)
        assert record["pairs"] == 64
        assert record["worker"] == 1234


class TestTrace:
    def test_add_span_clamps_negative(self):
        trace = Trace("abc", num_pairs=2)
        trace.add_span("queue", -0.001)
        assert trace.spans[0].seconds == 0.0

    def test_extend_shares_span_objects(self):
        shared = [Span("kernel", 0.001)]
        a, b = Trace("a", 1), Trace("b", 1)
        a.extend(shared)
        b.extend(shared)
        assert a.spans[0] is b.spans[0]

    def test_as_dict_shape(self):
        trace = Trace("abc", num_pairs=3)
        trace.add_span("queue", 0.0001)
        trace.total_seconds = 0.005
        record = trace.as_dict()
        assert record["trace_id"] == "abc"
        assert record["num_pairs"] == 3
        assert record["total_ms"] == pytest.approx(5.0)
        assert record["status"] == "ok"
        assert [s["name"] for s in record["spans"]] == ["queue"]


class TestTraceRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_recent_ring_bounded_newest_first(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            trace = recorder.start(num_pairs=i)
            recorder.record(trace, 0.001)
        assert recorder.num_recorded == 5
        recent = recorder.recent()
        assert len(recent) == 3  # ring evicted the two oldest
        assert [t["num_pairs"] for t in recent] == [4, 3, 2]  # newest first
        assert recorder.recent(limit=1)[0]["num_pairs"] == 4

    def test_slow_threshold_routes_to_slow_ring_and_log(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, component="slow-query")
        recorder = TraceRecorder(slow_threshold_ms=10.0, logger=logger)
        fast = recorder.start(1)
        recorder.record(fast, 0.005)
        slow = recorder.start(2)
        recorder.record(slow, 0.050)
        snap = recorder.snapshot()
        assert snap["num_recorded"] == 2
        assert snap["num_slow"] == 1
        assert [t["num_pairs"] for t in snap["slow"]] == [2]
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(events) == 1
        assert events[0]["event"] == "slow_query"
        assert events[0]["component"] == "slow-query"
        assert events[0]["trace_id"] == slow.trace_id
        assert events[0]["total_ms"] == pytest.approx(50.0)

    def test_threshold_is_inclusive(self):
        recorder = TraceRecorder(slow_threshold_ms=10.0)
        recorder.record(recorder.start(1), 0.010)
        assert recorder.snapshot()["num_slow"] == 1

    def test_no_threshold_means_no_slow_traces(self):
        recorder = TraceRecorder()
        recorder.record(recorder.start(1), 100.0)
        snap = recorder.snapshot()
        assert snap["slow_threshold_ms"] is None
        assert snap["num_slow"] == 0 and snap["slow"] == []

    def test_record_status(self):
        recorder = TraceRecorder()
        recorder.record(recorder.start(1), 0.001, status="error")
        assert recorder.recent()[0]["status"] == "error"

    def test_record_none_is_noop(self):
        recorder = TraceRecorder()
        recorder.record(None, 0.001)
        assert recorder.num_recorded == 0

    def test_snapshot_is_json_serialisable(self):
        recorder = TraceRecorder()
        trace = recorder.start(2)
        trace.add_span("kernel", 0.001, pairs=2)
        recorder.record(trace, 0.002)
        payload = json.loads(json.dumps(recorder.snapshot()))
        assert payload["recent"][0]["spans"][0]["name"] == "kernel"


class TestNullTraceRecorder:
    def test_disabled_and_inert(self):
        recorder = NullTraceRecorder()
        assert recorder.enabled is False
        assert TraceRecorder.enabled is True
        assert recorder.start(5) is None
        recorder.record(recorder.start(5), 1.0)
        assert recorder.num_recorded == 0
        assert recorder.snapshot()["recent"] == []


class TestStructuredLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, component="test")
        logger.event("first", value=1)
        logger.event("second", name="x")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "first" and first["value"] == 1
        assert first["component"] == "test"
        assert "ts" in first
        assert second["name"] == "x"

    def test_child_shares_stream_with_new_component(self):
        stream = io.StringIO()
        parent = StructuredLogger(stream, component="cli")
        child = parent.child("sharded")
        child.event("respawn")
        record = json.loads(stream.getvalue())
        assert record["component"] == "sharded"

    def test_unserialisable_values_degrade_to_repr(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream)
        logger.event("odd", payload=object())
        record = json.loads(stream.getvalue())
        assert "object object at" in record["payload"]

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream)
        stream.close()
        logger.event("after_close")  # must not raise

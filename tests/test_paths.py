"""Tests for shortest-path reconstruction (PathPrunedLandmarkLabeling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.paths import PathPrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.traversal import bfs_distance
from tests.conftest import random_test_graphs, sample_pairs


def assert_valid_path(graph: Graph, path, s: int, t: int, expected_length: float):
    """A returned path must start at s, end at t, follow edges, and be shortest."""
    assert path[0] == s
    assert path[-1] == t
    assert len(path) - 1 == expected_length
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b)
    # Shortest paths over simple graphs never repeat vertices.
    assert len(set(path)) == len(path)


class TestPathReconstruction:
    def test_unbuilt_raises(self):
        with pytest.raises(IndexStateError):
            PathPrunedLandmarkLabeling().distance(0, 1)

    def test_rejects_directed(self):
        graph = Graph(3, [(0, 1)], directed=True)
        with pytest.raises(IndexBuildError):
            PathPrunedLandmarkLabeling().build(graph)

    def test_path_on_chain(self, path_graph):
        oracle = PathPrunedLandmarkLabeling().build(path_graph)
        assert oracle.shortest_path(0, 4) == [0, 1, 2, 3, 4]
        assert oracle.shortest_path(4, 0) == [4, 3, 2, 1, 0]

    def test_trivial_path(self, path_graph):
        oracle = PathPrunedLandmarkLabeling().build(path_graph)
        assert oracle.shortest_path(2, 2) == [2]
        assert oracle.shortest_path(2, 3) == [2, 3]

    def test_disconnected_returns_none(self, disconnected_graph):
        oracle = PathPrunedLandmarkLabeling().build(disconnected_graph)
        assert oracle.shortest_path(0, 4) is None
        assert oracle.distance(0, 4) == float("inf")

    def test_distance_matches_bfs(self, medium_social_graph):
        oracle = PathPrunedLandmarkLabeling().build(medium_social_graph)
        for s, t in sample_pairs(medium_social_graph, 100, seed=7):
            assert oracle.distance(s, t) == bfs_distance(medium_social_graph, s, t)

    def test_paths_are_valid_shortest_paths(self):
        for graph in random_test_graphs(3, seed=8):
            oracle = PathPrunedLandmarkLabeling().build(graph)
            for s, t in sample_pairs(graph, 60, seed=9):
                expected = bfs_distance(graph, s, t)
                path = oracle.shortest_path(s, t)
                if not np.isfinite(expected):
                    assert path is None
                    continue
                assert path is not None
                assert_valid_path(graph, path, s, t, expected)

    def test_paths_through_example_graph(self, paper_example_graph):
        oracle = PathPrunedLandmarkLabeling().build(paper_example_graph)
        for s in range(paper_example_graph.num_vertices):
            for t in range(paper_example_graph.num_vertices):
                expected = bfs_distance(paper_example_graph, s, t)
                path = oracle.shortest_path(s, t)
                assert path is not None
                assert_valid_path(paper_example_graph, path, s, t, expected)

    def test_average_label_size(self, small_social_graph):
        oracle = PathPrunedLandmarkLabeling().build(small_social_graph)
        assert oracle.average_label_size() >= 1.0
        assert oracle.build_seconds > 0

    def test_bad_order_rejected(self, path_graph):
        with pytest.raises(IndexBuildError):
            PathPrunedLandmarkLabeling().build(path_graph, order=[0, 1, 2, 3, 3])

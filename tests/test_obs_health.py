"""Tests for the health engine: snapshot windows, rule shapes, alert lifecycle.

Everything here drives :class:`HealthEngine` with an explicit monotonic clock
and hand-built snapshots — the engine never reads time itself, so the
``pending → firing → resolved`` state machine is exactly reproducible.
"""

from __future__ import annotations

import pytest

from repro.obs.health import (
    AlertState,
    BurnRateRule,
    DeltaRule,
    HealthEngine,
    SnapshotWindow,
    ThresholdRule,
)


def _hist(count, good, *, key="latency_seconds"):
    """Cumulative histogram snapshot: ``good`` observations <= 25 ms."""
    return {
        "histograms": {
            key: {
                "buckets": [(0.025, float(good)), (float("inf"), float(count))],
                "count": float(count),
            }
        }
    }


class _EventLog:
    """Minimal StructuredLogger stand-in recording ``event()`` calls."""

    def __init__(self):
        self.events = []

    def event(self, name, **fields):
        self.events.append((name, fields))


class TestSnapshotWindow:
    def test_latest_and_value(self):
        window = SnapshotWindow()
        assert window.latest() is None
        assert window.value("qps") is None
        window.append(0.0, {"qps": 10.0, "label": "text"})
        window.append(1.0, {"qps": 20.0})
        assert window.latest() == {"qps": 20.0}
        assert window.value("qps") == 20.0
        # Non-numeric (and bool) values read as missing, not as numbers.
        window.append(2.0, {"qps": True})
        assert window.value("qps") is None

    def test_eviction_keeps_one_entry_beyond_horizon(self):
        window = SnapshotWindow(horizon_seconds=10.0)
        for t in range(25):
            window.append(float(t), {"n": float(t)})
        # Entries strictly inside the horizon survive, plus exactly one at or
        # beyond it so the longest window stays covered.
        assert len(window) == 11
        assert window.delta("n", 10.0) == 10.0

    def test_delta_requires_covered_window(self):
        window = SnapshotWindow()
        window.append(0.0, {"n": 5.0})
        window.append(3.0, {"n": 9.0})
        # Only 3 s of history: a 10 s window must not extrapolate.
        assert window.delta("n", 10.0) is None
        assert window.delta("n", 3.0) == 4.0

    def test_delta_clamps_counter_reset(self):
        window = SnapshotWindow()
        window.append(0.0, {"n": 100.0})
        window.append(60.0, {"n": 3.0})  # process restarted mid-window
        assert window.delta("n", 60.0) == 0.0

    def test_delta_missing_key_treated_as_zero_start(self):
        window = SnapshotWindow()
        window.append(0.0, {})
        window.append(60.0, {"n": 7.0})
        assert window.delta("n", 60.0) == 7.0
        assert window.delta("missing", 60.0) is None

    def test_histogram_delta(self):
        window = SnapshotWindow()
        window.append(0.0, _hist(100, 90))
        window.append(60.0, _hist(300, 110))
        buckets, count = window.histogram_delta("latency_seconds", 60.0)
        assert count == 200.0
        assert dict(buckets)[0.025] == 20.0
        assert window.histogram_delta("latency_seconds", 120.0) is None
        assert window.histogram_delta("other", 60.0) is None

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotWindow(horizon_seconds=0.0)


class TestThresholdRule:
    def _window(self, snapshot):
        window = SnapshotWindow()
        window.append(0.0, snapshot)
        return window

    def test_plain_gauge(self):
        rule = ThresholdRule("r", "ticket", metric="lag", threshold=0.25)
        assert rule.evaluate(self._window({"lag": 0.5})) == 0.5
        assert rule.breached(0.5)
        assert not rule.breached(0.25)  # default op is strict >
        assert rule.evaluate(self._window({})) is None

    def test_ratio_and_zero_denominator(self):
        rule = ThresholdRule(
            "r", "ticket", metric="dirty", denominator="total", threshold=0.25
        )
        assert rule.evaluate(self._window({"dirty": 30.0, "total": 100.0})) == 0.3
        # A zero denominator is insufficient data, not a division error.
        assert rule.evaluate(self._window({"dirty": 30.0, "total": 0.0})) is None

    def test_guard_gates_evaluation(self):
        rule = ThresholdRule(
            "r",
            "ticket",
            metric="hit_rate",
            threshold=0.10,
            op="<",
            guard_metric="traffic",
            guard_min=1000.0,
        )
        # Below the guard (or missing), the rule reports no data even though
        # the hit rate itself would breach.
        assert rule.evaluate(self._window({"hit_rate": 0.0, "traffic": 10.0})) is None
        assert rule.evaluate(self._window({"hit_rate": 0.0})) is None
        assert rule.evaluate(self._window({"hit_rate": 0.0, "traffic": 5000.0})) == 0.0

    def test_unknown_operator_rejected(self):
        rule = ThresholdRule("r", "ticket", metric="x", threshold=1.0, op="!=")
        with pytest.raises(ValueError):
            rule.breached(2.0)


class TestDeltaRule:
    def _window(self, old, new, seconds=60.0):
        window = SnapshotWindow()
        window.append(0.0, old)
        window.append(seconds, new)
        return window

    def test_raw_increase(self):
        rule = DeltaRule("r", "page", numerator=("respawns",), threshold=0.0)
        window = self._window({"respawns": 1.0}, {"respawns": 3.0})
        assert rule.evaluate(window) == 2.0
        assert rule.breached(2.0)
        assert not rule.breached(0.0)

    def test_ratio_with_zero_denominator_is_zero(self):
        rule = DeltaRule(
            "r",
            "page",
            numerator=("errors",),
            denominator=("requests",),
            threshold=0.05,
        )
        # No traffic in the window → no error rate, not missing data: the
        # alert must resolve on an idle server, not wedge in its last state.
        window = self._window(
            {"errors": 5.0, "requests": 100.0}, {"errors": 5.0, "requests": 100.0}
        )
        assert rule.evaluate(window) == 0.0

    def test_summed_numerator_and_rate(self):
        rule = DeltaRule(
            "r",
            "page",
            numerator=("errors", "rejected"),
            denominator=("requests", "rejected"),
            threshold=0.05,
        )
        window = self._window(
            {"errors": 0.0, "rejected": 0.0, "requests": 0.0},
            {"errors": 4.0, "rejected": 6.0, "requests": 94.0},
        )
        assert rule.evaluate(window) == pytest.approx(0.1)

    def test_uncovered_window_is_missing_data(self):
        rule = DeltaRule("r", "page", numerator=("n",), threshold=0.0)
        window = SnapshotWindow()
        window.append(0.0, {"n": 1.0})
        assert rule.evaluate(window) is None


class TestBurnRateRule:
    def _rule(self, **overrides):
        kwargs = dict(
            name="LatencySLOBurnRate",
            severity="page",
            histogram="latency_seconds",
            objective=0.99,
            threshold_seconds=0.025,
            short_window_seconds=60.0,
            long_window_seconds=300.0,
        )
        kwargs.update(overrides)
        return BurnRateRule(**kwargs)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            self._rule(objective=1.0)
        with pytest.raises(ValueError):
            self._rule(short_window_seconds=300.0, long_window_seconds=60.0)

    def test_validate_bounds(self):
        rule = self._rule()
        rule.validate_bounds((0.001, 0.025, float("inf")))
        with pytest.raises(ValueError):
            rule.validate_bounds((0.001, 0.005, float("inf")))

    def test_requires_both_windows(self):
        rule = self._rule()
        window = SnapshotWindow()
        window.append(0.0, _hist(0, 0))
        window.append(90.0, _hist(1000, 0))  # short window covered, long not
        assert rule.evaluate(window) is None

    def test_value_is_minimum_of_both_windows(self):
        rule = self._rule()
        window = SnapshotWindow()
        # Long window: mostly fast history; short window: a total cliff.
        window.append(0.0, _hist(0, 0))
        window.append(100.0, _hist(10_000, 10_000))
        window.append(310.0, _hist(12_000, 10_000))
        value = rule.evaluate(window)
        # Short (60 s) burn = 100; long (300 s) slow fraction = 2000/12000.
        long_burn = (2_000.0 / 12_000.0) / 0.01
        assert value == pytest.approx(long_burn)
        assert rule.breached(value)

    def test_missing_threshold_bound_is_missing_data(self):
        rule = self._rule(threshold_seconds=0.017)
        window = SnapshotWindow()
        window.append(0.0, _hist(0, 0))
        window.append(310.0, _hist(1000, 0))
        assert rule.evaluate(window) is None

    def test_no_observations_is_missing_data(self):
        rule = self._rule()
        window = SnapshotWindow()
        window.append(0.0, _hist(100, 100))
        window.append(310.0, _hist(100, 100))
        assert rule.evaluate(window) is None


class TestHealthEngineLifecycle:
    def _engine(self, for_seconds=5.0, logger=None):
        rule = ThresholdRule(
            "LagHigh", "ticket", metric="lag", threshold=0.25, for_seconds=for_seconds
        )
        return HealthEngine([rule], logger=logger)

    def test_duplicate_rule_names_rejected(self):
        rule = ThresholdRule("Same", "ticket", metric="x", threshold=1.0)
        with pytest.raises(ValueError):
            HealthEngine([rule, rule])

    def test_pending_then_firing_then_resolved(self):
        log = _EventLog()
        engine = self._engine(logger=log)
        assert engine.observe({"lag": 0.1}, now=0.0) == []
        assert engine.observe({"lag": 0.9}, now=1.0) == ["LagHigh:pending"]
        assert engine.active_alerts() == [
            {"alertname": "LagHigh", "severity": "ticket", "alertstate": "pending"}
        ]
        assert engine.alert_gauges() == {"alerts_firing": 0.0, "alerts_pending": 1.0}
        # Still inside the for-duration: no new event, still pending.
        assert engine.observe({"lag": 0.9}, now=3.0) == []
        assert engine.observe({"lag": 0.9}, now=6.0) == ["LagHigh:firing"]
        assert engine.alert_gauges() == {"alerts_firing": 1.0, "alerts_pending": 0.0}
        assert engine.observe({"lag": 0.1}, now=8.0) == ["LagHigh:resolved"]
        assert engine.active_alerts() == []
        assert engine.alert_gauges() == {"alerts_firing": 0.0, "alerts_pending": 0.0}
        assert [name for name, _ in log.events] == [
            "alert_pending",
            "alert_firing",
            "alert_resolved",
        ]
        fired = dict(log.events)["alert_firing"]
        assert fired["alertname"] == "LagHigh"
        assert fired["severity"] == "ticket"

    def test_pending_blip_clears_silently(self):
        log = _EventLog()
        engine = self._engine(logger=log)
        engine.observe({"lag": 0.9}, now=0.0)
        # The breach clears before the for-duration: no page, no resolved
        # event — nobody was ever notified (matching Prometheus).
        assert engine.observe({"lag": 0.1}, now=2.0) == []
        assert engine.active_alerts() == []
        assert [name for name, _ in log.events] == ["alert_pending"]

    def test_zero_for_duration_fires_immediately(self):
        engine = self._engine(for_seconds=0.0)
        assert engine.observe({"lag": 0.9}, now=0.0) == ["LagHigh:firing"]

    def test_missing_data_does_not_breach(self):
        engine = self._engine(for_seconds=0.0)
        assert engine.observe({}, now=0.0) == []
        assert engine.active_alerts() == []

    def test_alerts_payload_shape_and_recent(self):
        engine = self._engine(for_seconds=0.0)
        engine.observe({"lag": 0.9}, now=0.0)
        engine.observe({"lag": 0.1}, now=4.0)
        payload = engine.alerts_payload(now=10.0)
        assert payload["enabled"] is True
        (entry,) = payload["rules"]
        assert entry["alertname"] == "LagHigh"
        assert entry["alertstate"] == "ok"
        assert entry["for"] == 0.0
        assert payload["firing"] == [] and payload["pending"] == []
        (recent,) = payload["recent"]
        assert recent["alertname"] == "LagHigh"
        assert recent["held"] == 4.0
        assert recent["resolved_age"] == 6.0

    def test_broken_logger_never_breaks_observation(self):
        class Exploding:
            def event(self, *args, **kwargs):
                raise RuntimeError("sink down")

        engine = self._engine(for_seconds=0.0, logger=Exploding())
        assert engine.observe({"lag": 0.9}, now=0.0) == ["LagHigh:firing"]

    def test_alert_state_as_dict_ages(self):
        state = AlertState(state="firing", since=5.0, value=2.0)
        assert state.as_dict(now=8.0) == {
            "alertstate": "firing",
            "age": 3.0,
            "value": 2.0,
        }
        assert AlertState().as_dict(now=8.0) == {"alertstate": "ok"}

#!/usr/bin/env python
"""Weighted road-like networks: pruned Dijkstra versus online Dijkstra.

The paper contrasts complex networks with road networks and notes that the
method extends to weighted graphs by replacing the pruned BFS with a pruned
Dijkstra (Section 6).  This example exercises that variant on a synthetic
road-like network (a jittered grid with diagonal shortcuts) and on a random
geometric graph, comparing preprocessing cost, index size and query latency
against answering every query with a fresh Dijkstra run.

Run with:  python examples/road_network_weighted.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import OnlineDijkstraOracle
from repro.core import WeightedPrunedLandmarkLabeling
from repro.experiments import random_pairs
from repro.generators import grid_graph, random_geometric_graph
from repro.graph import largest_connected_component


def evaluate(name: str, graph, num_queries: int = 400) -> None:
    """Build the weighted oracle on one network and report its numbers."""
    print(f"\n=== {name}: {graph.num_vertices} vertices, {graph.num_edges} edges ===")

    start = time.perf_counter()
    oracle = WeightedPrunedLandmarkLabeling().build(graph)
    build_seconds = time.perf_counter() - start
    print(
        f"pruned Dijkstra indexing: {build_seconds:.2f} s, "
        f"average label size {oracle.average_label_size():.1f}, "
        f"index {oracle.index_size_bytes() / 1e6:.2f} MB"
    )

    pairs = random_pairs(graph.num_vertices, num_queries, seed=2)
    start = time.perf_counter()
    indexed = oracle.distances(pairs)
    indexed_per_query = (time.perf_counter() - start) / len(pairs)

    online = OnlineDijkstraOracle().build(graph)
    subset = pairs[:20]
    start = time.perf_counter()
    online_answers = online.distances(subset)
    online_per_query = (time.perf_counter() - start) / len(subset)

    assert np.allclose(indexed[:20], online_answers)
    print(
        f"query latency: index {indexed_per_query * 1e6:.1f} us vs online Dijkstra "
        f"{online_per_query * 1e3:.2f} ms "
        f"({online_per_query / max(indexed_per_query, 1e-12):.0f}x slower); "
        f"answers verified identical on {len(subset)} pairs"
    )
    finite = indexed[np.isfinite(indexed)]
    print(
        f"sampled travel costs: mean {finite.mean():.2f}, "
        f"90th percentile {np.percentile(finite, 90):.2f}"
    )


def main() -> None:
    # A city-like grid: unit-length blocks with jitter and occasional diagonals.
    city = grid_graph(
        45, 45, weighted=True, weight_jitter=0.3, diagonal_probability=0.15, seed=7
    )
    evaluate("jittered grid (city street network)", city)

    # A regional road network: random geometric graph, Euclidean edge lengths.
    regional = random_geometric_graph(2_500, 0.045, weighted=True, seed=8)
    regional, _ = largest_connected_component(regional)
    evaluate("random geometric graph (regional roads)", regional)

    print(
        "\nnote: road networks have large diameter and no hubs, so labels are "
        "bigger than on the social/web networks the paper targets — the "
        "comparison illustrates why the paper positions PLL for complex "
        "networks while road networks have their own specialised methods."
    )


if __name__ == "__main__":
    main()

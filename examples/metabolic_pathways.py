#!/usr/bin/env python
"""Metabolic pathway discovery: shortest paths between compounds.

The paper lists "discovery of optimal pathways between compounds in metabolic
networks" [31, 32] among the applications of distance queries.  There the
distance itself is not enough — biologists want the actual chain of reactions
— so this example uses the path-reconstructing variant
(``PathPrunedLandmarkLabeling``, Section 6 of the paper) on a synthetic
metabolite–reaction network, and additionally identifies "choke point"
compounds that appear on many shortest pathways (the load-point / choke-point
analysis of reference [32]).

Run with:  python examples/metabolic_pathways.py
"""

from __future__ import annotations

import time
from collections import Counter
from typing import List

import numpy as np

from repro.core import PathPrunedLandmarkLabeling
from repro.generators import holme_kim_graph
from repro.graph import GraphBuilder, largest_connected_component


def build_metabolic_network(num_compounds: int = 2_500, seed: int = 9):
    """A synthetic metabolite network with compound names.

    Metabolic networks are scale free with significant clustering (a few hub
    currency metabolites such as ATP or NADH take part in very many
    reactions), which is exactly what the Holme–Kim generator produces.  Names
    are synthetic ("C0001", ...), with the top hubs relabelled to familiar
    currency metabolites for readability.
    """
    topology = holme_kim_graph(num_compounds, 3, triad_probability=0.4, seed=seed)
    topology, _ = largest_connected_component(topology)

    hub_names = ["ATP", "ADP", "NADH", "NAD+", "H2O", "CO2", "CoA", "Pi"]
    degree_rank = np.argsort(-topology.degrees())
    names = [f"C{i:04d}" for i in range(topology.num_vertices)]
    for hub_name, vertex in zip(hub_names, degree_rank):
        names[int(vertex)] = hub_name

    builder = GraphBuilder()
    for u, v in topology.edges():
        builder.add_edge(names[u], names[v])
    return builder.build()


def main() -> None:
    network, labeling = build_metabolic_network()
    print(
        f"metabolic network stand-in: {network.num_vertices} compounds, "
        f"{network.num_edges} reaction links"
    )

    start = time.perf_counter()
    oracle = PathPrunedLandmarkLabeling().build(network)
    print(
        f"path-reconstructing index built in {time.perf_counter() - start:.2f} s "
        f"(average label size {oracle.average_label_size():.1f})"
    )

    # ------------------------------------------------------------------ #
    # Optimal pathways between a few compound pairs.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(4)
    print("\nshortest pathways between random compound pairs:")
    for _ in range(5):
        source = int(rng.integers(0, network.num_vertices))
        target = int(rng.integers(0, network.num_vertices))
        path = oracle.shortest_path(source, target)
        if path is None:
            continue
        chain = " -> ".join(labeling.label_of(v) for v in path)
        print(f"  [{len(path) - 1} steps] {chain}")

    # ------------------------------------------------------------------ #
    # Choke-point analysis: which compounds appear on many shortest pathways?
    # ------------------------------------------------------------------ #
    num_samples = 2_000
    counter: Counter = Counter()
    start = time.perf_counter()
    for _ in range(num_samples):
        source = int(rng.integers(0, network.num_vertices))
        target = int(rng.integers(0, network.num_vertices))
        path = oracle.shortest_path(source, target)
        if path and len(path) > 2:
            counter.update(path[1:-1])  # interior compounds only
    elapsed = time.perf_counter() - start

    print(
        f"\nchoke-point analysis over {num_samples} sampled pathways "
        f"({elapsed:.2f} s, {elapsed / num_samples * 1e3:.2f} ms per pathway):"
    )
    total = sum(counter.values())
    for vertex, count in counter.most_common(8):
        share = 100.0 * count / max(total, 1)
        print(
            f"  {labeling.label_of(vertex):>6s}: on {count} pathways "
            f"({share:.1f}% of interior hops)"
        )
    print(
        "\nthe currency-metabolite hubs dominate, matching the 'choke point' "
        "observation of the metabolic-network literature the paper cites."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build a pruned-landmark-labeling index and answer distance queries.

This walks through the complete basic workflow:

1. obtain a graph (here: a synthetic scale-free network; swap in
   ``repro.graph.read_edge_list`` for your own edge list),
2. build the exact distance oracle,
3. answer point and batch queries,
4. verify a few answers against a plain BFS,
5. persist the index to disk and reload it.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import PrunedLandmarkLabeling, load_index, save_index
from repro.baselines import BidirectionalBFSOracle
from repro.experiments import random_pairs
from repro.generators import barabasi_albert_graph


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A graph.  Any undirected repro.graph.Graph works; here we generate
    #    a 5 000-vertex scale-free network resembling a small social graph.
    # ------------------------------------------------------------------ #
    graph = barabasi_albert_graph(5_000, 4, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # ------------------------------------------------------------------ #
    # 2. Build the index.  Degree ordering and a handful of bit-parallel
    #    BFSs are the paper's recommended defaults.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=16).build(graph)
    print(
        f"index built in {time.perf_counter() - start:.2f} s  "
        f"(average label size {index.average_label_size():.1f}, "
        f"index size {index.index_size_bytes() / 1e6:.1f} MB)"
    )

    # ------------------------------------------------------------------ #
    # 3. Queries: exact distances, in microseconds.
    # ------------------------------------------------------------------ #
    print("\nsample queries:")
    for s, t in [(0, 4_999), (17, 2_431), (123, 124)]:
        print(f"  dist({s:5d}, {t:5d}) = {index.distance(s, t):g}")

    pairs = random_pairs(graph.num_vertices, 10_000, seed=1)
    start = time.perf_counter()
    distances = index.distances(pairs)
    per_query = (time.perf_counter() - start) / len(pairs)
    print(
        f"\n10,000 random queries in {per_query * 1e6:.1f} us each "
        f"(mean distance {distances[distances < float('inf')].mean():.2f})"
    )

    # ------------------------------------------------------------------ #
    # 4. Cross-check a few answers against an online BFS baseline.
    # ------------------------------------------------------------------ #
    baseline = BidirectionalBFSOracle().build(graph)
    for s, t in pairs[:25]:
        assert index.distance(s, t) == baseline.distance(s, t)
    print("cross-checked 25 queries against bidirectional BFS: all exact")

    # ------------------------------------------------------------------ #
    # 5. Persist and reload: a loaded index answers queries without the graph.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "quickstart_index.npz"
        save_index(index, path)
        reloaded = load_index(path)
        print(
            f"\nindex saved to and reloaded from {path.name}: "
            f"dist(0, 4999) = {reloaded.distance(0, 4_999):g}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Socially-sensitive search: rank results by network distance to the user.

The paper's introduction motivates distance queries with socially-sensitive
search [40, 42]: when a user searches, items owned by (or interacted with by)
*network-close* users should rank higher.  That requires the distance between
the querying user and the owner of every candidate result — dozens to hundreds
of distance queries per search, with interactive latency budgets.

This example builds a synthetic social network, attaches a corpus of "posts"
to random users, and runs a search that scores each matching post by a blend
of textual relevance and the social distance between searcher and author.  It
then compares the query cost of doing this with the pruned-landmark-labeling
index versus per-query BFS.

Run with:  python examples/social_search.py
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro import PrunedLandmarkLabeling
from repro.baselines import OnlineBFSOracle
from repro.datasets import load_dataset


@dataclass
class Post:
    """A piece of content owned by one user of the social network."""

    post_id: int
    author: int
    topic: str
    relevance: float  # pretend textual-match score in [0, 1]


TOPICS = ["graphs", "music", "cooking", "travel", "sports", "films"]


def make_corpus(num_posts: int, num_users: int, seed: int) -> List[Post]:
    """Attach random posts to random users."""
    rng = np.random.default_rng(seed)
    return [
        Post(
            post_id=i,
            author=int(rng.integers(0, num_users)),
            topic=TOPICS[int(rng.integers(0, len(TOPICS)))],
            relevance=float(rng.uniform(0.2, 1.0)),
        )
        for i in range(num_posts)
    ]


def socially_sensitive_score(relevance: float, distance: float) -> float:
    """Blend textual relevance with social proximity.

    Unreachable authors still rank, but behind everyone the searcher is
    connected to — the common production heuristic.
    """
    if not np.isfinite(distance):
        return relevance * 0.1
    return relevance / (1.0 + distance)


def run_search(oracle, searcher: int, topic: str, corpus: List[Post], top_k: int = 10):
    """Score every post matching ``topic`` and return the top-k."""
    matches = [post for post in corpus if post.topic == topic]
    scored = [
        (socially_sensitive_score(post.relevance, oracle.distance(searcher, post.author)), post)
        for post in matches
    ]
    scored.sort(key=lambda pair: pair[0], reverse=True)
    return scored[:top_k], len(matches)


def main() -> None:
    graph = load_dataset("epinions")
    print(
        f"social network stand-in: {graph.num_vertices} users, "
        f"{graph.num_edges} trust edges"
    )

    corpus = make_corpus(num_posts=4_000, num_users=graph.num_vertices, seed=11)
    searcher = int(np.argmax(graph.degrees())) // 2  # an ordinary, mid-degree user
    topic = "graphs"

    # Index once, search many times.
    start = time.perf_counter()
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=16).build(graph)
    print(f"index built in {time.perf_counter() - start:.2f} s")

    start = time.perf_counter()
    results, num_candidates = run_search(index, searcher, topic, corpus)
    indexed_seconds = time.perf_counter() - start
    print(
        f"\nsearch for '{topic}' by user {searcher}: scored {num_candidates} candidate "
        f"posts in {indexed_seconds * 1e3:.1f} ms using the index"
    )
    print("top results (score, post, author, social distance):")
    for score, post in results:
        distance = index.distance(searcher, post.author)
        print(
            f"  score={score:.3f}  post#{post.post_id:<5d} author={post.author:<6d} "
            f"distance={'inf' if not np.isfinite(distance) else int(distance)}"
        )

    # The same search with per-query BFS, on a subsample (it is too slow for all).
    online = OnlineBFSOracle().build(graph)
    subsample = [post for post in corpus if post.topic == topic][:25]
    start = time.perf_counter()
    for post in subsample:
        online.distance(searcher, post.author)
    online_per_query = (time.perf_counter() - start) / len(subsample)
    indexed_per_query = indexed_seconds / max(num_candidates, 1)
    print(
        f"\nper-distance-query cost: index {indexed_per_query * 1e6:.1f} us vs "
        f"online BFS {online_per_query * 1e6:.0f} us "
        f"({online_per_query / max(indexed_per_query, 1e-12):.0f}x slower)"
    )
    print(
        "with hundreds of candidates per search and strict latency budgets, the "
        "index is what makes socially-sensitive ranking feasible."
    )


if __name__ == "__main__":
    main()

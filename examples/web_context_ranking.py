#!/usr/bin/env python
"""Context-aware web search: boost pages close to the page being visited.

The paper cites context-aware search [39, 29] as a second motivating
application: while a user browses page P and issues a query, result pages that
are few links away from P (in the hyperlink graph) are more likely to be
relevant to the current context.  Because hyperlinks are directed, this
example uses the *directed* variant of pruned landmark labeling
(``DirectedPrunedLandmarkLabeling``) and ranks by the minimum of the two
one-way distances.

Run with:  python examples/web_context_ranking.py
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.core import DirectedPrunedLandmarkLabeling
from repro.generators import orient_edges, rmat_graph
from repro.graph import largest_connected_component


def build_web_graph(scale: int = 12, seed: int = 5):
    """A synthetic hyperlink graph: R-MAT topology with mixed link reciprocity."""
    undirected = rmat_graph(scale, 10.0, seed=seed)
    undirected, _ = largest_connected_component(undirected)
    return orient_edges(undirected, both_directions_probability=0.25, seed=seed)


def context_score(base_score: float, distance: float) -> float:
    """Damp a page's query-match score by its link distance from the context page."""
    if not np.isfinite(distance):
        return base_score * 0.05
    return base_score * (0.5 ** min(distance, 8))


def main() -> None:
    web = build_web_graph()
    print(
        f"hyperlink graph stand-in: {web.num_vertices} pages, {web.num_edges} links "
        "(directed)"
    )

    start = time.perf_counter()
    oracle = DirectedPrunedLandmarkLabeling().build(web)
    print(
        f"directed index built in {time.perf_counter() - start:.2f} s "
        f"(average IN+OUT label size {oracle.average_label_size():.1f})"
    )

    rng = np.random.default_rng(3)
    context_page = int(np.argmax(web.degrees()))  # the page the user is reading
    # Pretend these pages matched the textual query, with match scores.
    candidates: List[Tuple[int, float]] = [
        (int(rng.integers(0, web.num_vertices)), float(rng.uniform(0.3, 1.0)))
        for _ in range(300)
    ]

    start = time.perf_counter()
    ranked = []
    for page, base_score in candidates:
        # Hyperlink closeness in either direction counts as context relevance.
        distance = min(
            oracle.distance(context_page, page), oracle.distance(page, context_page)
        )
        ranked.append((context_score(base_score, distance), page, base_score, distance))
    elapsed = time.perf_counter() - start
    ranked.sort(reverse=True)

    print(
        f"\nre-ranked {len(candidates)} candidate pages against context page "
        f"{context_page} in {elapsed * 1e3:.1f} ms "
        f"({elapsed / len(candidates) * 1e6:.1f} us per candidate, two queries each)"
    )
    print("top 10 context-aware results (score, page, text score, link distance):")
    for score, page, base_score, distance in ranked[:10]:
        shown = "inf" if not np.isfinite(distance) else int(distance)
        print(
            f"  score={score:.3f}  page={page:<6d} text={base_score:.2f} "
            f"distance={shown}"
        )

    # Show how the context changes the ordering relative to pure text scores.
    text_only = sorted(candidates, key=lambda pair: pair[1], reverse=True)[:10]
    context_top = {page for _, page, _, _ in ranked[:10]}
    overlap = sum(1 for page, _ in text_only if page in context_top)
    print(
        f"\noverlap between text-only top-10 and context-aware top-10: {overlap}/10 "
        "— context re-ranking meaningfully changes what the user sees."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Maintaining the index on a growing network with incremental edge insertions.

The paper's conclusion lists dynamic graphs as future work; this library ships
the insert-only incremental maintenance algorithm as an extension
(``DynamicPrunedLandmarkLabeling``).  The scenario below simulates a social
network that keeps acquiring friendships: the oracle answers queries between
insertions, and we compare the cost of incremental maintenance against
rebuilding the index from scratch after every batch.

Run with:  python examples/dynamic_network.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DynamicPrunedLandmarkLabeling, PrunedLandmarkLabeling
from repro.experiments import random_pairs
from repro.generators import barabasi_albert_graph, split_edge_stream
from repro.graph import Graph


def main() -> None:
    final_network = barabasi_albert_graph(4_000, 3, seed=17)
    initial, stream = split_edge_stream(final_network, 0.85, seed=17)
    print(
        f"network: {final_network.num_vertices} users; starting from "
        f"{initial.num_edges} friendships, {len(stream)} more arrive over time"
    )

    start = time.perf_counter()
    oracle = DynamicPrunedLandmarkLabeling().build(initial)
    print(f"initial index built in {time.perf_counter() - start:.2f} s")

    watched_pairs = random_pairs(final_network.num_vertices, 5, seed=3)
    batch_size = 300
    inserted_edges = list(initial.edges())

    for batch_start in range(0, min(len(stream), 3 * batch_size), batch_size):
        batch = stream[batch_start: batch_start + batch_size]

        start = time.perf_counter()
        oracle.insert_edges(batch)
        incremental_seconds = time.perf_counter() - start
        inserted_edges.extend(batch)

        start = time.perf_counter()
        PrunedLandmarkLabeling().build(
            Graph(final_network.num_vertices, inserted_edges)
        )
        rebuild_seconds = time.perf_counter() - start

        print(
            f"\nafter {len(inserted_edges)} edges: inserted {len(batch)} edges "
            f"incrementally in {incremental_seconds * 1e3:.0f} ms "
            f"({incremental_seconds / len(batch) * 1e3:.2f} ms/edge) "
            f"vs full rebuild {rebuild_seconds:.2f} s"
        )
        for s, t in watched_pairs:
            print(f"  dist({s}, {t}) = {oracle.distance(s, t):g}")

    # Churn: the network also loses edges, and the oracle tracks that too.
    rng = np.random.default_rng(9)
    doomed = [
        inserted_edges[int(i)]
        for i in rng.choice(len(inserted_edges), size=20, replace=False)
    ]
    start = time.perf_counter()
    oracle.remove_edges(doomed)
    removal_seconds = time.perf_counter() - start
    inserted_edges = [edge for edge in inserted_edges if edge not in set(doomed)]
    print(
        f"\nremoved {len(doomed)} edges decrementally in "
        f"{removal_seconds * 1e3:.0f} ms "
        f"({removal_seconds / len(doomed) * 1e3:.2f} ms/edge)"
    )

    # Final consistency check against a fresh static index.
    static = PrunedLandmarkLabeling().build(
        Graph(final_network.num_vertices, inserted_edges)
    )
    check_pairs = random_pairs(final_network.num_vertices, 500, seed=5)
    assert np.array_equal(oracle.distances(check_pairs), static.distances(check_pairs))
    print(
        f"\nfinal state verified against a freshly built static index on "
        f"{len(check_pairs)} random pairs: identical distances."
    )


if __name__ == "__main__":
    main()

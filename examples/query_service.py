"""Example: running the query-serving subsystem end to end.

Builds an index over a synthetic social network, then demonstrates the three
serving pieces working together:

1. the batched engine answering thousands of pairs per call,
2. the hot-pair LRU cache absorbing skewed traffic,
3. snapshot hot swap: edge insertions applied behind the scenes and
   published atomically while the server keeps answering.

Run with: ``PYTHONPATH=src python examples/query_service.py``
"""

from __future__ import annotations

import numpy as np

from repro.experiments.workloads import random_pairs
from repro.generators import barabasi_albert_graph
from repro.serving import LRUCache, QueryServer, SnapshotManager


def main() -> None:
    graph = barabasi_albert_graph(3_000, 4, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # A snapshot manager owns the writable shadow index and publishes
    # immutable snapshots; the server batches requests against whichever
    # snapshot is current.
    manager = SnapshotManager.from_graph(graph)
    cache = LRUCache(10_000)

    with QueryServer(manager, cache=cache, max_batch_size=4_096) as server:
        # Uniform traffic, submitted in one big request.
        pairs = np.asarray(random_pairs(graph.num_vertices, 20_000, seed=1))
        distances = server.submit(pairs[:, 0], pairs[:, 1]).wait(120)
        finite = distances[np.isfinite(distances)]
        print(
            f"answered {len(distances):,} queries; "
            f"mean distance {finite.mean():.2f}, max {finite.max():.0f}"
        )

        # Skewed traffic: a handful of hot pairs dominates -> cache hits.
        hot = pairs[:50]
        for _ in range(20):
            server.submit(hot[:, 0], hot[:, 1]).wait(120)
        print(f"cache hit rate after hot traffic: {cache.stats.hit_rate:.1%}")

        # Live updates: insert shortcut edges, publish, keep serving.
        probe = (int(pairs[0, 0]), int(pairs[0, 1]))
        before = server.distance(*probe)
        rng = np.random.default_rng(7)
        manager.insert_edges(
            (int(rng.integers(0, 100)), int(rng.integers(1_000, 3_000)))
            for _ in range(10)
        )
        snapshot = manager.publish()
        after = server.distance(*probe)
        print(
            f"hot swap published version {snapshot.version}; "
            f"d{probe} {before:g} -> {after:g}"
        )

        stats = server.metrics_snapshot()
        print(
            f"served {stats['num_queries']:,.0f} queries at "
            f"{stats['qps']:,.0f} QPS | latency p50 "
            f"{stats['latency_p50_ms']:.2f} ms, p99 "
            f"{stats['latency_p99_ms']:.2f} ms | cache hit rate "
            f"{stats['cache_hit_rate']:.1%}"
        )


if __name__ == "__main__":
    main()
